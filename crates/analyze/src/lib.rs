//! # omen-analyze — dependency-free domain lints for the omen workspace
//!
//! Clippy knows Rust; it does not know SPMD programming or quantum-transport
//! numerics. This crate encodes the workspace-specific invariants as a small
//! rule engine — zero dependencies, so the CI gate costs one crate compile
//! and no proc-macro stack. It runs in two passes:
//!
//! 1. **Syntactic** ([`parse`]): each file is lexed ([`lexer`]) and parsed
//!    into a lightweight item model — fn items, call expressions, protocol
//!    primitives, a control-flow skeleton of branches/`?`/early-`return`,
//!    and `rank()`-conditioned regions. The six lexical rules run here.
//! 2. **Dataflow** ([`callgraph`], [`effects`]): a workspace call graph is
//!    built and per-function *collective effect summaries* are propagated
//!    bottom-up to a fixpoint. The three interprocedural rules run on the
//!    summaries.
//!
//! ## Rules
//!
//! | rule | what it catches |
//! |------|-----------------|
//! | `spmd-divergence` | collectives (`allreduce_sum`, `bcast`, `gather`, `barrier`, `split`) lexically inside `rank()`-conditioned branches — the classic deadlock/divergence seed in SPMD code |
//! | `spmd-divergence-interproc` | a collective *transitively reachable through calls* from inside a rank()-conditioned branch — closes the helper-one-call-deep gap the lexical rule cannot see |
//! | `protocol-early-exit` | `?` / `return` between a send and its matching recv, or between epoch-open and epoch-close — the typed-error-era deadlock seed: the peer blocks until timeout |
//! | `tag-conflict` | two concurrently-live call paths using the same reserved parsim tag in the same direction — concurrent rounds on one tag can cross-match messages |
//! | `float-eq` | `==` / `!=` against a float literal in the solver crates — exact float comparison is almost always a tolerance bug |
//! | `panic-backstop` | `panic!` / `todo!` / `unimplemented!` / `.unwrap()` / `.expect()` in non-test solver-crate code — the error taxonomy (`OmenResult`) exists so rank failures stay recoverable |
//! | `print-in-lib` | `println!` / `eprintln!` (and `print!` / `eprint!`) in library targets — libraries must stay silent; drivers log through the sanctioned env-gated sink |
//! | `errors-doc` | `pub fn` returning `OmenResult` without a `# Errors` doc section |
//! | `tolerance-literal` | hard-coded scientific-notation tolerances (`1e-12`) compared in test targets — numeric bounds belong in the repo-root `TOLERANCES.toml` policy (DESIGN.md §12) |
//!
//! ## Escape hatch
//!
//! A finding is suppressed by an adjacent annotation comment:
//!
//! ```text
//! // analyze: allow(<rule>, <reason>)
//! ```
//!
//! A *trailing* annotation covers its own line. An *own-line* annotation
//! covers the next code line — and, when that line opens a brace block
//! (`fn … {`, `if … {`), the whole block. Attribute lines (`#[…]`) between
//! the annotation and the code it governs are skipped.
//!
//! ## Ratchet
//!
//! CI compares the full finding set against the committed
//! `ANALYZE_BASELINE.json` (see [`baseline`]): a finding not in the
//! baseline fails the gate, and a baseline entry that no longer fires
//! fails it too (stale suppression) — the count can only go down.

pub mod baseline;
pub mod callgraph;
pub mod effects;
pub mod lexer;
pub mod parse;

use lexer::{lex, Comment, Lexed, Tok, TokKind};
use parse::{is_ident, is_punct};
use std::collections::HashMap;
use std::path::{Component, Path, PathBuf};

/// Which kind of compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Library code (`src/` outside `src/bin/`).
    Lib,
    /// Binary target (`src/bin/`, `src/main.rs`).
    Bin,
    /// Example (`examples/`).
    Example,
    /// Criterion-style bench target (`benches/`).
    Bench,
    /// Integration test (`tests/`).
    Test,
}

/// Where a file sits in the workspace, for rule scoping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Short crate name: `"negf"` for `crates/negf`, `"omen"` for the root
    /// package.
    pub crate_name: String,
    /// Target kind inferred from the path.
    pub kind: TargetKind,
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (see [`RULES`]).
    pub rule: &'static str,
    /// File the finding is in (as passed to [`analyze_source`]).
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Static description of one rule for `--list-rules`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule name used in findings and `allow(...)` annotations.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
}

/// The rule table.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "spmd-divergence",
        summary: "collective call lexically inside a rank()-conditioned branch",
        scope: "all crates, all targets (tests included)",
    },
    RuleInfo {
        name: "spmd-divergence-interproc",
        summary: "collective transitively reachable through calls from a rank()-conditioned branch",
        scope: "all crates, all targets (tests included); needs the workspace pass",
    },
    RuleInfo {
        name: "protocol-early-exit",
        summary: "?/return between a send and its matching recv, or between epoch open/close",
        scope: "lib/bin non-test code; needs the workspace pass",
    },
    RuleInfo {
        name: "tag-conflict",
        summary: "two concurrently-live call paths using the same reserved tag in one direction",
        scope: "lib/bin non-test code; needs the workspace pass",
    },
    RuleInfo {
        name: "float-eq",
        summary: "== / != comparison against a float literal",
        scope: "solver crates (num linalg sparse wf negf poisson phonon core), non-test code",
    },
    RuleInfo {
        name: "panic-backstop",
        summary: "panic!/todo!/unimplemented!/.unwrap()/.expect() outside tests",
        scope:
            "fault-isolated crates (linalg sparse wf negf parsim analyze serve), lib/bin non-test code",
    },
    RuleInfo {
        name: "print-in-lib",
        summary: "println!/eprintln!/print!/eprint! in library code",
        scope: "lib targets of every crate except omen-bench, non-test code",
    },
    RuleInfo {
        name: "errors-doc",
        summary: "pub fn returning OmenResult without a `# Errors` doc section",
        scope: "lib targets, non-test code",
    },
    RuleInfo {
        name: "tolerance-literal",
        summary: "hard-coded tolerance literal compared in a test — use the TOLERANCES.toml policy",
        scope: "test targets (tests/) of every crate",
    },
];

/// Crates whose numerics must never use exact float equality.
const FLOAT_EQ_CRATES: &[&str] = &[
    "num", "linalg", "sparse", "wf", "negf", "poisson", "phonon", "core",
];

/// Crates whose non-test code must stay panic-free (mirrors the clippy
/// `unwrap_used`/`expect_used`/`panic` CI gate). The analyzer holds itself
/// to the same bar: a lint gate that can panic is a lint gate that can be
/// knocked out by the code it lints.
const PANIC_CRATES: &[&str] = &[
    "linalg", "sparse", "wf", "negf", "parsim", "analyze", "serve",
];

/// Collective operations whose call schedule must be rank-uniform.
const COLLECTIVES: &[&str] = &["allreduce_sum", "bcast", "gather", "barrier", "split"];

/// Classifies a workspace-relative path (`crates/negf/src/rgf.rs`,
/// `src/bin/omen_cli.rs`, `examples/iv_curve.rs`, …).
pub fn classify(rel: &Path) -> FileClass {
    let parts: Vec<&str> = rel
        .components()
        .filter_map(|c| match c {
            Component::Normal(p) => p.to_str(),
            _ => None,
        })
        .collect();
    let (crate_name, rest): (String, &[&str]) = if parts.first() == Some(&"crates") {
        (
            parts.get(1).unwrap_or(&"").to_string(),
            parts.get(2..).unwrap_or(&[]),
        )
    } else {
        ("omen".to_string(), &parts[..])
    };
    let kind = match rest.first() {
        Some(&"examples") => TargetKind::Example,
        Some(&"benches") => TargetKind::Bench,
        Some(&"tests") => TargetKind::Test,
        Some(&"src") => match rest.get(1) {
            Some(&"bin") => TargetKind::Bin,
            Some(&"main.rs") => TargetKind::Bin,
            _ => TargetKind::Lib,
        },
        _ => TargetKind::Lib,
    };
    FileClass { crate_name, kind }
}

/// Recursively collects the workspace's `.rs` files, skipping `target`,
/// VCS internals, and the analyzer's own lint fixtures (which deliberately
/// violate every rule). Results are sorted for deterministic output.
///
/// # Errors
///
/// Propagates filesystem errors from directory traversal.
pub fn walk_workspace(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Analyzes one source file under the given classification with the
/// *lexical* rules only; the interprocedural rules need the whole
/// workspace — use [`analyze_sources`]. Allow-annotated findings are
/// already filtered out.
pub fn analyze_source(path: &str, src: &str, class: &FileClass) -> Vec<Finding> {
    let lexed = lex(src);
    let ctx = FileCtx::build(&lexed);
    let mut findings = Vec::new();
    rule_spmd_divergence(&lexed.toks, &ctx, &mut findings);
    if FLOAT_EQ_CRATES.contains(&class.crate_name.as_str())
        && matches!(class.kind, TargetKind::Lib | TargetKind::Bin)
    {
        rule_float_eq(&lexed.toks, &ctx, &mut findings);
    }
    if PANIC_CRATES.contains(&class.crate_name.as_str())
        && matches!(class.kind, TargetKind::Lib | TargetKind::Bin)
    {
        rule_panic_backstop(&lexed.toks, &ctx, &mut findings);
    }
    if class.kind == TargetKind::Lib && class.crate_name != "bench" {
        rule_print_in_lib(&lexed.toks, &ctx, &mut findings);
    }
    if class.kind == TargetKind::Lib {
        rule_errors_doc(&lexed.toks, &ctx, &mut findings);
    }
    if class.kind == TargetKind::Test {
        rule_tolerance_literal(&lexed.toks, &ctx, &mut findings);
    }
    findings.sort_by_key(|f| f.line);
    findings
        .into_iter()
        .map(|mut f| {
            f.path = path.to_string();
            f
        })
        .collect()
}

/// The full two-pass analysis over a set of files treated as one
/// workspace: the lexical rules per file, then the call graph + effect
/// summaries and the interprocedural rules across all of them. Findings
/// are sorted by `(path, line, rule)`.
pub fn analyze_sources(files: &[(String, String, FileClass)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut models = Vec::with_capacity(files.len());
    for (path, src, class) in files {
        findings.extend(analyze_source(path, src, class));
        models.push(parse::parse_file(path, src, class));
    }
    let graph = callgraph::CallGraph::build(&models);
    let sums = effects::compute_summaries(&models, &graph);
    effects::rule_spmd_divergence_interproc(&models, &graph, &sums, &mut findings);
    effects::rule_protocol_early_exit(&models, &graph, &sums, &mut findings);
    effects::rule_tag_conflict(&models, &graph, &sums, &mut findings);
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings
}

// ---------------------------------------------------------------------------
// Shared per-file context (lexical rules)
// ---------------------------------------------------------------------------

struct FileCtx<'a> {
    /// The code token stream.
    toks: &'a [Tok],
    /// Line ranges (inclusive) of `#[cfg(test)]` / `#[test]` spans.
    test_spans: Vec<(u32, u32)>,
    /// Rule name → covered line ranges from `analyze: allow(...)` comments.
    allows: HashMap<String, Vec<(u32, u32)>>,
    /// Line → index of its first code token.
    line_first_tok: HashMap<u32, usize>,
    /// Line → its comment (for doc lookup; last one wins).
    line_comment: HashMap<u32, &'a Comment>,
    /// Token index ranges (exclusive of the braces) inside
    /// rank()-conditioned branches.
    rank_spans: Vec<(usize, usize)>,
}

impl<'a> FileCtx<'a> {
    fn build(lexed: &'a Lexed) -> Self {
        let toks = &lexed.toks[..];
        let brace_match = parse::match_braces(toks);
        let mut line_first_tok = HashMap::new();
        for (i, t) in toks.iter().enumerate() {
            line_first_tok.entry(t.line).or_insert(i);
        }
        let mut line_comment = HashMap::new();
        for c in &lexed.comments {
            line_comment.insert(c.line, c);
        }
        let test_spans = parse::find_test_spans(toks, &brace_match);
        let tainted = parse::rank_tainted_idents(toks);
        let rank_spans = parse::find_rank_spans(toks, &brace_match, &tainted);
        let allows = parse::find_allows(toks, &lexed.comments, &line_first_tok, &brace_match);
        FileCtx {
            toks,
            test_spans,
            allows,
            line_first_tok,
            line_comment,
            rank_spans,
        }
    }

    fn in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .get(rule)
            .is_some_and(|spans| spans.iter().any(|&(a, b)| a <= line && line <= b))
    }

    fn in_rank_span(&self, tok_idx: usize) -> bool {
        self.rank_spans
            .iter()
            .any(|&(open, close)| open < tok_idx && tok_idx < close)
    }
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn push(findings: &mut Vec<Finding>, rule: &'static str, line: u32, message: String) {
    findings.push(Finding {
        rule,
        path: String::new(),
        line,
        message,
    });
}

fn rule_spmd_divergence(toks: &[Tok], ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for i in 0..toks.len().saturating_sub(2) {
        if is_punct(&toks[i], ".")
            && toks[i + 1].kind == TokKind::Ident
            && COLLECTIVES.contains(&toks[i + 1].text.as_str())
            && is_punct(&toks[i + 2], "(")
            && ctx.in_rank_span(i + 1)
        {
            let line = toks[i + 1].line;
            if ctx.allowed("spmd-divergence", line) {
                continue;
            }
            push(
                findings,
                "spmd-divergence",
                line,
                format!(
                    "collective `{}` inside a rank()-conditioned branch: ranks taking the \
                     other branch skip it and the schedule diverges",
                    toks[i + 1].text
                ),
            );
        }
    }
}

fn rule_float_eq(toks: &[Tok], ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(is_punct(t, "==") || is_punct(t, "!=")) {
            continue;
        }
        let adj_float = (i > 0 && toks[i - 1].kind == TokKind::Float)
            || (i + 1 < toks.len() && toks[i + 1].kind == TokKind::Float);
        if !adj_float || ctx.in_test(t.line) || ctx.allowed("float-eq", t.line) {
            continue;
        }
        push(
            findings,
            "float-eq",
            t.line,
            format!(
                "exact float comparison `{}` against a literal: use a tolerance, or annotate \
                 an intentional exact guard",
                t.text
            ),
        );
    }
}

fn rule_panic_backstop(toks: &[Tok], ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        let hit = if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
            && i + 1 < toks.len()
            && is_punct(&toks[i + 1], "!")
        {
            Some(format!("{}!", t.text))
        } else if i >= 1
            && is_punct(&toks[i - 1], ".")
            && t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "unwrap" | "expect")
            && i + 1 < toks.len()
            && is_punct(&toks[i + 1], "(")
        {
            Some(format!(".{}()", t.text))
        } else {
            None
        };
        let Some(what) = hit else { continue };
        if ctx.in_test(t.line) || ctx.allowed("panic-backstop", t.line) {
            continue;
        }
        push(
            findings,
            "panic-backstop",
            t.line,
            format!(
                "`{what}` in non-test solver code: return a typed OmenError so rank faults \
                 stay recoverable"
            ),
        );
    }
}

fn rule_print_in_lib(toks: &[Tok], ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for i in 0..toks.len().saturating_sub(1) {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "println" | "eprintln" | "print" | "eprint")
            && is_punct(&toks[i + 1], "!")
            && !ctx.in_test(t.line)
            && !ctx.allowed("print-in-lib", t.line)
        {
            push(
                findings,
                "print-in-lib",
                t.line,
                format!(
                    "`{}!` in library code: libraries stay silent — route driver progress \
                     through the env-gated log sink",
                    t.text
                ),
            );
        }
    }
}

fn rule_errors_doc(toks: &[Tok], ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < toks.len() {
        if !is_ident(&toks[i], "pub") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip restricted visibility `pub(crate)` — not public API.
        if j < toks.len() && is_punct(&toks[j], "(") {
            i += 1;
            continue;
        }
        // Skip qualifiers.
        while j < toks.len()
            && (toks[j].kind == TokKind::Str
                || matches!(
                    toks[j].text.as_str(),
                    "unsafe" | "const" | "async" | "extern"
                ))
        {
            j += 1;
        }
        if j + 1 >= toks.len() || !is_ident(&toks[j], "fn") {
            i += 1;
            continue;
        }
        let name = toks[j + 1].text.clone();
        // Signature runs to the body `{` (or `;`) at delimiter depth 0.
        let mut depth = 0i32;
        let mut k = j + 2;
        let mut returns_omen_result = false;
        let mut past_arrow = false;
        while k < toks.len() {
            let t = &toks[k];
            if is_punct(t, "(") || is_punct(t, "[") {
                depth += 1;
            } else if is_punct(t, ")") || is_punct(t, "]") {
                depth -= 1;
            } else if is_punct(t, "->") && depth <= 0 {
                past_arrow = true;
            } else if past_arrow && is_ident(t, "OmenResult") {
                returns_omen_result = true;
            } else if depth <= 0 && (is_punct(t, "{") || is_punct(t, ";")) {
                break;
            }
            k += 1;
        }
        if returns_omen_result && !ctx.in_test(toks[i].line) {
            let line = toks[i].line;
            if !ctx.allowed("errors-doc", line) && !doc_has_errors_section(ctx, line) {
                push(
                    findings,
                    "errors-doc",
                    line,
                    format!(
                        "pub fn `{name}` returns OmenResult but its docs have no `# Errors` \
                         section"
                    ),
                );
            }
        }
        i = j + 2;
    }
}

/// Flags scientific-notation float literals with a negative exponent
/// (`1e-12`) on lines that also perform an ordered comparison — the
/// signature of a hard-coded accuracy tolerance in a test. Bounds belong
/// in the repo-root `TOLERANCES.toml` (read through
/// `omen_num::tolerance::test_bound`), where every change carries a
/// rationale; an inline literal is exactly the silent-drift channel the
/// policy exists to close. Physics parameters in argument position
/// (`eta = 2e-6` with no comparison on the line) and structural factors
/// (`100.0 * tol`) do not trip.
fn rule_tolerance_literal(toks: &[Tok], ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let mut cmp_lines: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for t in toks {
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), "<" | "<=" | ">" | ">=") {
            cmp_lines.insert(t.line);
        }
    }
    for t in toks {
        if t.kind == TokKind::Float
            && (t.text.contains("e-") || t.text.contains("E-"))
            && cmp_lines.contains(&t.line)
            && !ctx.allowed("tolerance-literal", t.line)
        {
            push(
                findings,
                "tolerance-literal",
                t.line,
                format!(
                    "hard-coded tolerance `{}` in a test comparison: pull the bound from \
                     TOLERANCES.toml via omen_num::tolerance::test_bound so every change \
                     carries a rationale",
                    t.text
                ),
            );
        }
    }
}

/// Walks upward from the `pub` token's line through doc comments and
/// attribute lines, checking the doc block for a `# Errors` heading.
fn doc_has_errors_section(ctx: &FileCtx, fn_line: u32) -> bool {
    let mut l = fn_line.saturating_sub(1);
    while l > 0 {
        if let Some(c) = ctx.line_comment.get(&l) {
            if c.text.starts_with("///") {
                if c.text.contains("# Errors") {
                    return true;
                }
                l -= 1;
                continue;
            }
        }
        if line_is_attribute(ctx, l) {
            l -= 1;
            continue;
        }
        break;
    }
    false
}

fn line_is_attribute(ctx: &FileCtx, line: u32) -> bool {
    ctx.line_first_tok
        .get(&line)
        .is_some_and(|&i| is_punct(&ctx.toks[i], "#"))
}
