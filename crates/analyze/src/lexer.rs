//! A hand-rolled Rust tokenizer — just enough lexical fidelity for the
//! analyzer rules, with zero dependencies.
//!
//! The token stream carries line numbers and distinguishes identifiers,
//! punctuation (with the multi-char operators the rules care about fused:
//! `==`, `!=`, `->`, `=>`, `::`, `..`), integer vs float literals, strings
//! (including raw/byte strings), chars vs lifetimes. Comments are collected
//! on a side channel with an `own_line` flag so the rule engine can resolve
//! `// analyze: allow(...)` annotations and `///` doc blocks.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Operator / delimiter (multi-char ops fused).
    Punct,
    /// Integer literal (any radix, with suffix).
    Int,
    /// Float literal (`1.0`, `1.`, `2e-5`, `3f64`).
    Float,
    /// String literal (plain, raw, byte).
    Str,
    /// Char literal.
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Verbatim text (strings keep their quotes).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// One comment (line or block) with its starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// Verbatim text including the `//` / `/*` introducer.
    pub text: String,
    /// True when no code precedes the comment on its line.
    pub own_line: bool,
}

/// Lexer output: the code token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Scanner {
    chars: Vec<char>,
    i: usize,
    line: u32,
}

impl Scanner {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(ch) = c {
            self.i += 1;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn text_from(&self, start: usize) -> String {
        self.chars[start..self.i].iter().collect()
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src`. Never fails: unexpected bytes degrade to single-char
/// punctuation, which is the right behavior for a linter that must keep
/// scanning past anything the compiler would reject anyway.
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
    };
    let mut out = Lexed::default();
    // Line of the most recent code token's end — used for `own_line`.
    let mut last_code_line: u32 = 0;

    while let Some(c) = s.peek(0) {
        let line = s.line;
        let start = s.i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                s.bump();
                continue;
            }
            '/' if s.peek(1) == Some('/') => {
                while let Some(ch) = s.peek(0) {
                    if ch == '\n' {
                        break;
                    }
                    s.bump();
                }
                out.comments.push(Comment {
                    line,
                    text: s.text_from(start),
                    own_line: last_code_line != line,
                });
                continue;
            }
            '/' if s.peek(1) == Some('*') => {
                s.bump();
                s.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (s.peek(0), s.peek(1)) {
                        (Some('/'), Some('*')) => {
                            s.bump();
                            s.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            s.bump();
                            s.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            s.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    line,
                    text: s.text_from(start),
                    own_line: last_code_line != line,
                });
                continue;
            }
            '"' => {
                lex_plain_string(&mut s);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: s.text_from(start),
                    line,
                });
            }
            '\'' => {
                let kind = lex_char_or_lifetime(&mut s);
                out.toks.push(Tok {
                    kind,
                    text: s.text_from(start),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let kind = lex_number(&mut s);
                out.toks.push(Tok {
                    kind,
                    text: s.text_from(start),
                    line,
                });
            }
            c if is_ident_start(c) => {
                if let Some(kind) = try_lex_prefixed_literal(&mut s) {
                    out.toks.push(Tok {
                        kind,
                        text: s.text_from(start),
                        line,
                    });
                } else {
                    while let Some(ch) = s.peek(0) {
                        if is_ident_continue(ch) {
                            s.bump();
                        } else {
                            break;
                        }
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text: s.text_from(start),
                        line,
                    });
                }
            }
            _ => {
                let text = lex_punct(&mut s);
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text,
                    line,
                });
            }
        }
        last_code_line = s.line;
    }
    out
}

fn lex_plain_string(s: &mut Scanner) {
    s.bump(); // opening quote
    while let Some(c) = s.bump() {
        match c {
            '\\' => {
                s.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Raw strings: caller sits on the `r` of `r"…"` / `r#"…"#…`.
fn lex_raw_string(s: &mut Scanner) {
    s.bump(); // 'r'
    let mut hashes = 0usize;
    while s.peek(0) == Some('#') {
        s.bump();
        hashes += 1;
    }
    s.bump(); // opening quote
    loop {
        match s.bump() {
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && s.peek(0) == Some('#') {
                    s.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
            Some(_) => {}
            None => break,
        }
    }
}

/// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, and `r#ident`
/// raw identifiers. Returns `None` when the scanner actually sits on a
/// plain identifier and has consumed nothing.
fn try_lex_prefixed_literal(s: &mut Scanner) -> Option<TokKind> {
    match (s.peek(0), s.peek(1)) {
        (Some('r'), Some('"')) => {
            lex_raw_string(s);
            Some(TokKind::Str)
        }
        (Some('r'), Some('#')) => {
            // Distinguish r#"raw string"# from r#raw_ident.
            let mut k = 1;
            while s.peek(k) == Some('#') {
                k += 1;
            }
            if s.peek(k) == Some('"') {
                lex_raw_string(s);
                Some(TokKind::Str)
            } else if k == 2 && s.peek(2).is_some_and(is_ident_start) {
                // Raw identifier `r#match`: one Ident token (text keeps the
                // `r#` so it can never collide with the bare keyword) —
                // splitting it would inject a phantom `fn`/`match`/`if`
                // keyword into the stream and corrupt item parsing.
                s.bump(); // 'r'
                s.bump(); // '#'
                while let Some(ch) = s.peek(0) {
                    if is_ident_continue(ch) {
                        s.bump();
                    } else {
                        break;
                    }
                }
                Some(TokKind::Ident)
            } else {
                None
            }
        }
        (Some('b'), Some('"')) => {
            s.bump(); // 'b'
            lex_plain_string(s);
            Some(TokKind::Str)
        }
        (Some('b'), Some('\'')) => {
            s.bump(); // 'b'
            s.bump(); // opening quote
            while let Some(c) = s.bump() {
                match c {
                    '\\' => {
                        s.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            Some(TokKind::Char)
        }
        (Some('b'), Some('r')) => {
            let mut k = 2;
            while s.peek(k) == Some('#') {
                k += 1;
            }
            if s.peek(k) == Some('"') {
                s.bump(); // 'b'
                lex_raw_string(s);
                Some(TokKind::Str)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn lex_char_or_lifetime(s: &mut Scanner) -> TokKind {
    // Sits on the opening quote.
    match (s.peek(1), s.peek(2)) {
        (Some('\\'), _) => {
            s.bump(); // quote
            s.bump(); // backslash
            s.bump(); // escaped char
            while let Some(c) = s.bump() {
                if c == '\'' {
                    break;
                }
            }
            TokKind::Char
        }
        (Some(_), Some('\'')) => {
            s.bump();
            s.bump();
            s.bump();
            TokKind::Char
        }
        (Some(c), _) if is_ident_start(c) => {
            s.bump(); // quote
            while let Some(ch) = s.peek(0) {
                if is_ident_continue(ch) {
                    s.bump();
                } else {
                    break;
                }
            }
            TokKind::Lifetime
        }
        _ => {
            s.bump();
            TokKind::Punct
        }
    }
}

fn lex_number(s: &mut Scanner) -> TokKind {
    let mut kind = TokKind::Int;
    if s.peek(0) == Some('0') && matches!(s.peek(1), Some('x' | 'o' | 'b')) {
        s.bump();
        s.bump();
        while let Some(c) = s.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.bump();
            } else {
                break;
            }
        }
        return TokKind::Int;
    }
    while let Some(c) = s.peek(0) {
        if c.is_ascii_digit() || c == '_' {
            s.bump();
        } else {
            break;
        }
    }
    if s.peek(0) == Some('.') {
        match s.peek(1) {
            Some(d) if d.is_ascii_digit() => {
                s.bump();
                kind = TokKind::Float;
                while let Some(c) = s.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        s.bump();
                    } else {
                        break;
                    }
                }
            }
            Some('.') => {}                    // `1..n` range
            Some(c) if is_ident_start(c) => {} // `1.max(2)` method call
            _ => {
                s.bump(); // trailing-dot float `1.`
                kind = TokKind::Float;
            }
        }
    }
    if matches!(s.peek(0), Some('e' | 'E')) {
        let exp = match (s.peek(1), s.peek(2)) {
            (Some(d), _) if d.is_ascii_digit() => true,
            (Some('+') | Some('-'), Some(d)) if d.is_ascii_digit() => true,
            _ => false,
        };
        if exp {
            s.bump();
            if matches!(s.peek(0), Some('+' | '-')) {
                s.bump();
            }
            while let Some(c) = s.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    s.bump();
                } else {
                    break;
                }
            }
            kind = TokKind::Float;
        }
    }
    // Type suffix (`f64`, `u32`, …).
    let suffix_start = s.i;
    while let Some(c) = s.peek(0) {
        if is_ident_continue(c) {
            s.bump();
        } else {
            break;
        }
    }
    if s.chars.get(suffix_start) == Some(&'f') {
        kind = TokKind::Float;
    }
    kind
}

const FUSED: &[&str] = &[
    "..=", "==", "!=", "->", "=>", "::", "<=", ">=", "&&", "||", "..",
];

fn lex_punct(s: &mut Scanner) -> String {
    for f in FUSED {
        if f.chars().enumerate().all(|(k, c)| s.peek(k) == Some(c)) {
            for _ in 0..f.chars().count() {
                s.bump();
            }
            return (*f).to_string();
        }
    }
    s.bump().map(String::from).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn floats_vs_ints_vs_ranges() {
        let t = kinds("1.0 2e-5 3f64 1. 4 0x1E 1..5 7.max(1) 2.5e3");
        let f: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(f, ["1.0", "2e-5", "3f64", "1.", "2.5e3"]);
        let ints: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Int)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(ints, ["4", "0x1E", "1", "5", "7", "1"]);
    }

    #[test]
    fn fused_operators_and_eq() {
        let t = kinds("a == b != c -> d => e :: f ..= g");
        let puncts: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "->", "=>", "::", "..="]);
    }

    #[test]
    fn strings_chars_lifetimes_comments() {
        let src = r####"
let s = "a // not a comment \" end";
let r = r#"raw "inner" text"#;
let c = 'x'; let esc = '\n'; let lt: &'static str = s; // trailing
// own line
"####;
        let lexed = lex(src);
        let strs: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[1].text.contains("inner"));
        assert_eq!(
            lexed
                .toks
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            2
        );
        assert_eq!(
            lexed
                .toks
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            1 // 'static
        );
        let comments = &lexed.comments;
        assert_eq!(comments.len(), 2);
        assert!(!comments[0].own_line);
        assert!(comments[1].own_line);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "let a = \"line\n1 to\n3\";\nlet b = 9;";
        let lexed = lex(src);
        let b = lexed.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("a /* outer /* inner */ still */ b");
        assert_eq!(lexed.toks.len(), 2);
        assert_eq!(lexed.comments.len(), 1);
    }

    /// One row per lexer edge case the parser layer leans on: the source,
    /// the expected `(kind, text)` stream. Brace/quote content inside
    /// string/char literals must never leak into the punct stream, or the
    /// parser's brace matching (and with it every span computation)
    /// silently corrupts.
    #[test]
    fn edge_case_table() {
        use TokKind::*;
        let cases: &[(&str, &[(TokKind, &str)])] = &[
            // -- raw strings ------------------------------------------------
            (r###"r"plain""###, &[(Str, r###"r"plain""###)]),
            (
                r###"r#"has "quote""#"###,
                &[(Str, r###"r#"has "quote""#"###)],
            ),
            (
                r####"r##"inner "# close"##"####,
                &[(Str, r####"r##"inner "# close"##"####)],
            ),
            // A raw string ending in a backslash (the case plain-string
            // escape logic would overrun).
            (
                r###"r"tail\" x"###,
                &[(Str, r###"r"tail\""###), (Ident, "x")],
            ),
            // Raw string containing braces: still one token.
            (r###"r"{ }" y"###, &[(Str, r###"r"{ }""###), (Ident, "y")]),
            // Byte / raw-byte strings.
            (r###"b"bytes""###, &[(Str, r###"b"bytes""###)]),
            (r####"br#"raw "b""#"####, &[(Str, r####"br#"raw "b""#"####)]),
            // Raw identifiers are a single Ident (never a phantom keyword).
            ("r#match x", &[(Ident, "r#match"), (Ident, "x")]),
            ("r#fn()", &[(Ident, "r#fn"), (Punct, "("), (Punct, ")")]),
            // -- char / byte literals with braces and quotes ----------------
            ("'{'", &[(Char, "'{'")]),
            ("'}'", &[(Char, "'}'")]),
            ("'\"'", &[(Char, "'\"'")]),
            (r"'\''", &[(Char, r"'\''")]),
            (r"'\\'", &[(Char, r"'\\'")]),
            (r"'\u{7D}'", &[(Char, r"'\u{7D}'")]),
            ("b'{'", &[(Char, "b'{'")]),
            ("b'\"'", &[(Char, "b'\"'")]),
            (r"b'\''", &[(Char, r"b'\''")]),
            // Char in a match arm keeps the arrow separate.
            ("'}' =>", &[(Char, "'}'"), (Punct, "=>")]),
            // -- lifetimes stay distinct from chars -------------------------
            ("&'a T", &[(Punct, "&"), (Lifetime, "'a"), (Ident, "T")]),
            ("'static", &[(Lifetime, "'static")]),
            ("'_,", &[(Lifetime, "'_"), (Punct, ",")]),
            // -- plain strings with escapes and braces ----------------------
            (r#""a\"b" z"#, &[(Str, r#""a\"b""#), (Ident, "z")]),
            (r#""{}" w"#, &[(Str, r#""{}""#), (Ident, "w")]),
            (r#""\\" v"#, &[(Str, r#""\\""#), (Ident, "v")]),
        ];
        for (src, want) in cases {
            let got: Vec<(TokKind, String)> = kinds(src);
            let want: Vec<(TokKind, String)> =
                want.iter().map(|&(k, s)| (k, s.to_string())).collect();
            assert_eq!(got, want, "lexing {src:?}");
        }
    }

    /// Nested block comments: one comment token per table row, with the
    /// remaining code stream intact.
    #[test]
    fn block_comment_table() {
        let cases: &[(&str, usize, &[&str])] = &[
            ("/* a */ x", 1, &["x"]),
            ("/* a /* b */ c */ x", 1, &["x"]),
            ("/* a /* b /* c */ */ */ x", 1, &["x"]),
            // `/*/` opens but does not close (matches rustc).
            ("/* /*/ */ */ x", 1, &["x"]),
            // Unterminated comment swallows to EOF without panicking.
            ("x /* open", 1, &["x"]),
            // Quotes inside block comments are not string openers.
            ("/* \"unclosed */ x", 1, &["x"]),
        ];
        for (src, n_comments, code) in cases {
            let lexed = lex(src);
            assert_eq!(lexed.comments.len(), *n_comments, "comments in {src:?}");
            let idents: Vec<&str> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
            assert_eq!(&idents, code, "code stream of {src:?}");
        }
    }

    /// Brace matching must survive braces hidden inside every literal form —
    /// this is the invariant the parse layer's span logic builds on.
    #[test]
    fn brace_balance_survives_literal_braces() {
        let src = r####"
fn f() {
    let a = '{';
    let b = "}}{";
    let c = r#"{"#;
    let d = b'{';
    if x { g('}'); }
}
"####;
        let lexed = lex(src);
        let mut depth = 0i64;
        for t in &lexed.toks {
            if t.kind == TokKind::Punct && t.text == "{" {
                depth += 1;
            } else if t.kind == TokKind::Punct && t.text == "}" {
                depth -= 1;
            }
            assert!(depth >= 0, "negative depth at {:?}", t);
        }
        assert_eq!(depth, 0, "unbalanced braces");
    }
}
