//! Pass 2b: per-function *collective effect summaries* and the three
//! interprocedural rules built on them.
//!
//! A summary is the ordered sequence of protocol operations a function may
//! perform — its own collectives/sends/recvs/epoch markers and early exits,
//! with callee summaries inlined at the call site (bounded by [`OPS_CAP`]).
//! Early exits are *never* inlined across a call: a callee's `?` returns
//! from the callee, not from the caller, so only the caller's own exits can
//! abandon the caller's protocol. Each summary also carries a witness chain
//! for the first transitively-reachable collective, which is what lets
//! findings name the path (`helper → deep → bcast`).
//!
//! Propagation is a chaotic iteration to a fixpoint: recompute every
//! summary from its callees' current summaries until nothing changes. The
//! op list is length-capped and the witness chain depth-capped, so the
//! lattice is finite and the iteration terminates; [`ROUND_CAP`] is a
//! backstop for pathological shapes, after which the partial (still
//! conservative) summaries are used as-is. Recursive cycles simply stop
//! growing once the cap truncates the repeated suffix.

use crate::callgraph::CallGraph;
use crate::parse::{EventKind, FileModel};
use crate::{Finding, TargetKind};
use std::collections::HashSet;

/// Maximum inlined protocol ops kept per function summary.
pub const OPS_CAP: usize = 64;
/// Maximum call-chain segments kept in a witness.
pub const CHAIN_CAP: usize = 6;
/// Fixpoint iteration backstop.
pub const ROUND_CAP: usize = 32;

/// A protocol operation in a flattened summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Collective by name.
    Collective(String),
    /// Send with the reserved tag, when statically known.
    Send(Option<String>),
    /// Recv with the reserved tag, when statically known.
    Recv(Option<String>),
    /// Epoch opening marker.
    EpochOpen,
    /// Epoch closing marker.
    EpochClose,
    /// The function's own `?` / `return` (never inlined from callees).
    Exit,
}

/// One op with provenance: where it is defined and whether it executes
/// under rank-divergent control flow (at any level of the inlined chain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SumOp {
    /// What the op is.
    pub kind: OpKind,
    /// File (model index) the op's source line lives in.
    pub file: usize,
    /// 1-based line in that file.
    pub line: u32,
    /// True when the op (or the call chain inlining it) sits inside a
    /// rank()-conditioned region.
    pub under_rank: bool,
}

/// Call chain to the first reachable collective: the called fn names in
/// order, then the collective itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Intermediate callee names (capped at [`CHAIN_CAP`]).
    pub chain: Vec<String>,
    /// Collective name.
    pub name: String,
    /// Defining file (model index).
    pub file: usize,
    /// Defining line.
    pub line: u32,
}

/// Effect summary of one function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Summary {
    /// Flattened op sequence, own ops and inlined callee ops in call order.
    pub ops: Vec<SumOp>,
    /// The op list hit [`OPS_CAP`]; the tail is missing (conservative:
    /// flags below still propagate).
    pub truncated: bool,
    /// First transitively-reachable collective, with its call chain.
    pub collective_witness: Option<Witness>,
    /// Some reachable collective executes under rank-divergent control
    /// flow somewhere down the chain.
    pub may_diverge_by_rank: bool,
    /// Some own exit sits strictly between paired ops (send→recv or
    /// epoch-open→epoch-close) of the flattened sequence.
    pub may_exit_mid_protocol: bool,
}

/// Computes the fixpoint of all function summaries over the call graph.
pub fn compute_summaries(models: &[FileModel], graph: &CallGraph) -> Vec<Summary> {
    let mut sums: Vec<Summary> = vec![Summary::default(); graph.fns.len()];
    for _round in 0..ROUND_CAP {
        let mut changed = false;
        for gid in 0..graph.fns.len() {
            let new = summarize_one(gid, models, graph, &sums);
            if new != sums[gid] {
                sums[gid] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

/// Recomputes one function's summary from the current callee summaries.
fn summarize_one(gid: usize, models: &[FileModel], graph: &CallGraph, sums: &[Summary]) -> Summary {
    let (fi, ki) = graph.fns[gid];
    let f = &models[fi].fns[ki];
    let mut s = Summary::default();
    let mut edge_iter = graph.calls[gid].iter().peekable();
    for (ei, ev) in f.events.iter().enumerate() {
        let own = |kind: OpKind| SumOp {
            kind,
            file: fi,
            line: ev.line,
            under_rank: ev.under_rank,
        };
        match &ev.kind {
            EventKind::Collective { name } => {
                if s.collective_witness.is_none() {
                    s.collective_witness = Some(Witness {
                        chain: Vec::new(),
                        name: name.clone(),
                        file: fi,
                        line: ev.line,
                    });
                }
                if ev.under_rank {
                    s.may_diverge_by_rank = true;
                }
                push_op(&mut s, own(OpKind::Collective(name.clone())));
            }
            EventKind::Send { tag } => push_op(&mut s, own(OpKind::Send(tag.clone()))),
            EventKind::Recv { tag } => push_op(&mut s, own(OpKind::Recv(tag.clone()))),
            EventKind::EpochOpen => push_op(&mut s, own(OpKind::EpochOpen)),
            EventKind::EpochClose => push_op(&mut s, own(OpKind::EpochClose)),
            EventKind::Exit { .. } => push_op(&mut s, own(OpKind::Exit)),
            EventKind::Call { callee, .. } => {
                // Edges were built in event order; advance to this event's.
                while edge_iter.peek().is_some_and(|e| e.event < ei) {
                    edge_iter.next();
                }
                let Some(edge) = edge_iter.peek().filter(|e| e.event == ei) else {
                    continue;
                };
                let primary = &sums[edge.callees[0]];
                // Inline the primary candidate's protocol ops (not its
                // exits) at this position, OR-ing the call's rank flag in.
                for op in &primary.ops {
                    if op.kind == OpKind::Exit {
                        continue;
                    }
                    let mut op = op.clone();
                    op.under_rank |= ev.under_rank;
                    push_op(&mut s, op);
                }
                s.truncated |= primary.truncated;
                // Witness and flags consider every candidate — ambiguity
                // must never hide a collective.
                for &c in &edge.callees {
                    let cs = &sums[c];
                    if let Some(w) = &cs.collective_witness {
                        if s.collective_witness.is_none() {
                            let mut chain = Vec::with_capacity(w.chain.len() + 1);
                            chain.push(callee.clone());
                            chain.extend(w.chain.iter().cloned());
                            chain.truncate(CHAIN_CAP);
                            s.collective_witness = Some(Witness {
                                chain,
                                name: w.name.clone(),
                                file: w.file,
                                line: w.line,
                            });
                        }
                        if ev.under_rank {
                            s.may_diverge_by_rank = true;
                        }
                    }
                    if cs.may_diverge_by_rank {
                        s.may_diverge_by_rank = true;
                    }
                }
            }
        }
    }
    s.may_exit_mid_protocol = exit_between_paired_ops(&s.ops);
    s
}

fn push_op(s: &mut Summary, op: SumOp) {
    if s.ops.len() < OPS_CAP {
        s.ops.push(op);
    } else {
        s.truncated = true;
    }
}

/// Finds an own `Exit` op strictly between a send and the next recv after
/// it, or between an epoch-open and the next epoch-close. Exits sharing a
/// source line with any send/recv in the sequence are skipped: `?` applied
/// directly to a comm call is the designed typed-fatal path (`RecvTimeout`
/// etc.), not an abandonment of the protocol.
fn exit_between_paired_ops(ops: &[SumOp]) -> bool {
    let comm_lines: HashSet<(usize, u32)> = ops
        .iter()
        .filter(|o| matches!(o.kind, OpKind::Send(_) | OpKind::Recv(_)))
        .map(|o| (o.file, o.line))
        .collect();
    paired_op_spans(ops).iter().any(|&(open, close, _)| {
        ops[open + 1..close]
            .iter()
            .any(|op| op.kind == OpKind::Exit && !comm_lines.contains(&(op.file, op.line)))
    })
}

/// `(open idx, close idx, kind)` of every send→next-recv and
/// epoch-open→next-epoch-close pair in a flattened op sequence.
pub(crate) fn paired_op_spans(ops: &[SumOp]) -> Vec<(usize, usize, &'static str)> {
    let mut pairs = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op.kind {
            OpKind::Send(_) => {
                if let Some(j) =
                    (i + 1..ops.len()).find(|&j| matches!(ops[j].kind, OpKind::Recv(_)))
                {
                    pairs.push((i, j, "send/recv round"));
                }
            }
            OpKind::EpochOpen => {
                if let Some(j) = (i + 1..ops.len()).find(|&j| ops[j].kind == OpKind::EpochClose) {
                    pairs.push((i, j, "epoch"));
                }
            }
            _ => {}
        }
    }
    pairs
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn push_finding(
    findings: &mut Vec<Finding>,
    rule: &'static str,
    path: &str,
    line: u32,
    message: String,
) {
    findings.push(Finding {
        rule,
        path: path.to_string(),
        line,
        message,
    });
}

/// `spmd-divergence-interproc`: a call under rank-divergent control flow
/// whose callee may (transitively) perform a collective. The lexical
/// `spmd-divergence` rule only sees collectives spelled inside the branch;
/// this rule closes the one-helper-deep gap. Scope mirrors the lexical
/// rule: all crates, all targets.
pub fn rule_spmd_divergence_interproc(
    models: &[FileModel],
    graph: &CallGraph,
    sums: &[Summary],
    findings: &mut Vec<Finding>,
) {
    for gid in 0..graph.fns.len() {
        let (fi, ki) = graph.fns[gid];
        let m = &models[fi];
        let f = &m.fns[ki];
        let mut seen: HashSet<(u32, String)> = HashSet::new();
        for edge in &graph.calls[gid] {
            let ev = &f.events[edge.event];
            if !ev.under_rank {
                continue;
            }
            let EventKind::Call { callee, .. } = &ev.kind else {
                continue;
            };
            let Some(w) = edge
                .callees
                .iter()
                .find_map(|&c| sums[c].collective_witness.as_ref())
            else {
                continue;
            };
            if m.allowed("spmd-divergence-interproc", ev.line)
                || !seen.insert((ev.line, callee.clone()))
            {
                continue;
            }
            let mut via: Vec<String> = vec![format!("{callee}()")];
            via.extend(w.chain.iter().map(|c| format!("{c}()")));
            push_finding(
                findings,
                "spmd-divergence-interproc",
                &m.path,
                ev.line,
                format!(
                    "collective `{}` ({}:{}) is reachable via {} from inside a \
                     rank()-conditioned branch: ranks taking the other branch never issue \
                     it and the collective schedule diverges",
                    w.name,
                    models[w.file].path,
                    w.line,
                    via.join(" -> "),
                ),
            );
        }
    }
}

/// `protocol-early-exit`: a `?` or `return` strictly between a send and its
/// matching recv, or between epoch-open and epoch-close, in lib/bin
/// non-test code. Bailing out mid-round leaves the peer blocked until its
/// timeout; the round must complete (or fail typed on the comm call
/// itself) before control leaves the function.
pub fn rule_protocol_early_exit(
    models: &[FileModel],
    graph: &CallGraph,
    sums: &[Summary],
    findings: &mut Vec<Finding>,
) {
    for (gid, s) in sums.iter().enumerate() {
        let (fi, ki) = graph.fns[gid];
        let m = &models[fi];
        if !matches!(m.class.kind, TargetKind::Lib | TargetKind::Bin) {
            continue;
        }
        if !s.may_exit_mid_protocol {
            continue;
        }
        let f = &m.fns[ki];
        // Re-derive the exits so each distinct line reports once.
        let mut reported: HashSet<u32> = HashSet::new();
        let ops = &s.ops;
        let comm_lines: HashSet<(usize, u32)> = ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Send(_) | OpKind::Recv(_)))
            .map(|o| (o.file, o.line))
            .collect();
        for (open, close, what) in paired_op_spans(ops) {
            for op in &ops[open + 1..close] {
                if op.kind != OpKind::Exit
                    || op.file != fi
                    || comm_lines.contains(&(op.file, op.line))
                {
                    continue;
                }
                if m.in_test(op.line)
                    || m.allowed("protocol-early-exit", op.line)
                    || !reported.insert(op.line)
                {
                    continue;
                }
                push_finding(
                    findings,
                    "protocol-early-exit",
                    &m.path,
                    op.line,
                    format!(
                        "early exit in `{}` between the open and close of a {} (opened \
                         {}:{}, closed {}:{}): peers block until timeout when this path \
                         is taken — finish the round, or annotate the typed-fatal path",
                        f.name,
                        what,
                        models[ops[open].file].path,
                        ops[open].line,
                        models[ops[close].file].path,
                        ops[close].line,
                    ),
                );
            }
        }
    }
}

/// `tag-conflict`: two call paths that can be live concurrently both use
/// the same reserved tag in the same direction. Sites whose functions
/// reach one another are one protocol component (a coordinator calling its
/// own helper is not a conflict); two *independent* components sending on
/// one tag under a common caller means messages can cross-match.
pub fn rule_tag_conflict(
    models: &[FileModel],
    graph: &CallGraph,
    sums: &[Summary],
    findings: &mut Vec<Finding>,
) {
    let _ = sums;
    // Collect direct tagged sites in lib/bin non-test code.
    struct Site {
        gid: usize,
        line: u32,
        is_send: bool,
    }
    let mut by_tag: std::collections::BTreeMap<String, Vec<Site>> = Default::default();
    for gid in 0..graph.fns.len() {
        let (fi, ki) = graph.fns[gid];
        let m = &models[fi];
        if !matches!(m.class.kind, TargetKind::Lib | TargetKind::Bin) {
            continue;
        }
        for ev in &m.fns[ki].events {
            let (tag, is_send) = match &ev.kind {
                EventKind::Send { tag: Some(t) } => (t, true),
                EventKind::Recv { tag: Some(t) } => (t, false),
                _ => continue,
            };
            if m.in_test(ev.line) {
                continue;
            }
            by_tag.entry(tag.clone()).or_default().push(Site {
                gid,
                line: ev.line,
                is_send,
            });
        }
    }
    for (tag, sites) in &by_tag {
        // Union site functions that reach each other (either direction).
        let mut site_fns: Vec<usize> = sites.iter().map(|s| s.gid).collect();
        site_fns.sort_unstable();
        site_fns.dedup();
        let reach: Vec<HashSet<usize>> = site_fns.iter().map(|&g| graph.reaching(&[g])).collect();
        let mut comp: Vec<usize> = (0..site_fns.len()).collect();
        fn root(comp: &mut [usize], mut i: usize) -> usize {
            while comp[i] != i {
                comp[i] = comp[comp[i]];
                i = comp[i];
            }
            i
        }
        for i in 0..site_fns.len() {
            for j in i + 1..site_fns.len() {
                // `reach[i]` holds everything that reaches fn i; fn j
                // appearing there means j calls (transitively) into i.
                if reach[i].contains(&site_fns[j]) || reach[j].contains(&site_fns[i]) {
                    let (a, b) = (root(&mut comp, i), root(&mut comp, j));
                    comp[a.max(b)] = a.min(b);
                }
            }
        }
        for is_send in [true, false] {
            // Components owning a site of this direction, with their first
            // such site, ordered by source position for determinism.
            let mut comp_site: std::collections::BTreeMap<usize, &Site> = Default::default();
            for s in sites.iter().filter(|s| s.is_send == is_send) {
                let idx = site_fns.binary_search(&s.gid).unwrap_or(0);
                let c = root(&mut comp, idx);
                let cur = comp_site.entry(c).or_insert(s);
                if (graph.fns[s.gid].0, s.line) < (graph.fns[cur.gid].0, cur.line) {
                    *cur = s;
                }
            }
            if comp_site.len() < 2 {
                continue;
            }
            // Pairwise: conflict only when a common (non-test) caller can
            // have both components live at once.
            let entries: Vec<(&usize, &&Site)> = comp_site.iter().collect();
            for i in 0..entries.len() {
                for j in i + 1..entries.len() {
                    let (a, b) = (entries[i].1, entries[j].1);
                    let ra = graph.reaching(&[a.gid]);
                    let rb = graph.reaching(&[b.gid]);
                    let common = ra.intersection(&rb).find(|&&g| {
                        let (fi, ki) = graph.fns[g];
                        !models[fi].fns[ki].is_test && !models[fi].fns[ki].is_closure
                    });
                    let Some(&common) = common else { continue };
                    // Report at the lexically-later site.
                    let (later, earlier) = {
                        let (afi, _) = graph.fns[a.gid];
                        let (bfi, _) = graph.fns[b.gid];
                        if (bfi, b.line) > (afi, a.line) {
                            (b, a)
                        } else {
                            (a, b)
                        }
                    };
                    let (lfi, lki) = graph.fns[later.gid];
                    let m = &models[lfi];
                    if m.allowed("tag-conflict", later.line) {
                        continue;
                    }
                    let (efi, eki) = graph.fns[earlier.gid];
                    let (cfi, cki) = graph.fns[common];
                    let dir = if is_send { "send" } else { "recv" };
                    push_finding(
                        findings,
                        "tag-conflict",
                        &m.path,
                        later.line,
                        format!(
                            "`{tag}` is {dir}-used by two independent call paths that can \
                             be live concurrently: `{}` here and `{}` ({}:{}), both \
                             reachable from `{}` ({}) — concurrent rounds on one tag can \
                             cross-match messages; give one path its own tag",
                            m.fns[lki].name,
                            models[efi].fns[eki].name,
                            models[efi].path,
                            earlier.line,
                            models[cfi].fns[cki].name,
                            models[cfi].path,
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::{FileClass, TargetKind};

    fn models(files: &[(&str, &str)]) -> Vec<FileModel> {
        files
            .iter()
            .map(|(p, s)| {
                parse_file(
                    p,
                    s,
                    &FileClass {
                        crate_name: "x".to_string(),
                        kind: TargetKind::Lib,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn witness_chain_through_two_hops() {
        let ms = models(&[(
            "crates/x/src/a.rs",
            "fn deep(c: &Comm) { c.bcast(buf, 0); }\n\
             fn mid(c: &Comm) { deep(c); }\n\
             fn top(c: &Comm) { mid(c); }\n",
        )]);
        let g = CallGraph::build(&ms);
        let sums = compute_summaries(&ms, &g);
        let top = g
            .fns
            .iter()
            .position(|&(_, ki)| ms[0].fns[ki].name == "top")
            .unwrap();
        let w = sums[top].collective_witness.as_ref().unwrap();
        assert_eq!(w.name, "bcast");
        assert_eq!(w.chain, vec!["mid".to_string(), "deep".to_string()]);
        assert_eq!(w.line, 1);
    }

    #[test]
    fn recursive_cycle_terminates_conservatively() {
        let ms = models(&[(
            "crates/x/src/a.rs",
            "fn ping(c: &Comm, d: u32) { if d > 0 { pong(c, d - 1); } }\n\
             fn pong(c: &Comm, d: u32) { c.barrier(); ping(c, d); }\n",
        )]);
        let g = CallGraph::build(&ms);
        let sums = compute_summaries(&ms, &g);
        assert_eq!(sums.len(), g.fns.len());
        for s in &sums {
            assert!(
                s.collective_witness.is_some(),
                "both cycle members must report the reachable barrier"
            );
        }
    }

    #[test]
    fn mid_protocol_exit_flag() {
        let ms = models(&[(
            "crates/x/src/a.rs",
            "fn round(c: &Comm) -> OmenResult<()> {\n\
             \x20   c.send(1, TAG_A, data);\n\
             \x20   let x = fallible()?;\n\
             \x20   let r = c.recv(1, TAG_A)?;\n\
             \x20   Ok(())\n\
             }\n",
        )]);
        let g = CallGraph::build(&ms);
        let sums = compute_summaries(&ms, &g);
        let round = g
            .fns
            .iter()
            .position(|&(_, ki)| ms[0].fns[ki].name == "round")
            .unwrap();
        assert!(sums[round].may_exit_mid_protocol);
    }

    #[test]
    fn exit_on_comm_line_is_designed_fatal_path() {
        let ms = models(&[(
            "crates/x/src/a.rs",
            "fn round(c: &Comm) -> OmenResult<()> {\n\
             \x20   c.send(1, TAG_A, data);\n\
             \x20   let r = c.recv(1, TAG_A)?;\n\
             \x20   Ok(())\n\
             }\n",
        )]);
        let g = CallGraph::build(&ms);
        let sums = compute_summaries(&ms, &g);
        let round = g
            .fns
            .iter()
            .position(|&(_, ki)| ms[0].fns[ki].name == "round")
            .unwrap();
        assert!(!sums[round].may_exit_mid_protocol);
    }
}
