//! omen-analyze CLI — runs the domain lints over the workspace.
//!
//! ```sh
//! cargo run --release -p omen-analyze                # warn mode
//! cargo run --release -p omen-analyze -- --deny-all  # CI gate: exit 1 on findings
//! cargo run --release -p omen-analyze -- --list-rules
//! cargo run --release -p omen-analyze -- --rule float-eq crates/linalg
//! cargo run --release -p omen-analyze -- --json                      # machine output
//! cargo run --release -p omen-analyze -- --baseline ANALYZE_BASELINE.json --deny-all
//! cargo run --release -p omen-analyze -- --write-baseline ANALYZE_BASELINE.json
//! ```
//!
//! Exit codes: 0 clean (or findings in warn mode), 1 findings under
//! `--deny-all` or any ratchet violation under `--baseline`, 2 usage or
//! I/O error (including a malformed baseline).

use omen_analyze::{
    analyze_sources, baseline, classify, walk_workspace, FileClass, Finding, RULES,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    deny_all: bool,
    list_rules: bool,
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    budget_ms: Option<u128>,
    rules: Vec<String>,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny_all: false,
        list_rules: false,
        json: false,
        baseline: None,
        write_baseline: None,
        budget_ms: None,
        rules: Vec::new(),
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-all" => args.deny_all = true,
            "--list-rules" => args.list_rules = true,
            "--json" => args.json = true,
            "--baseline" => {
                let p = it.next().ok_or("--baseline requires a file path")?;
                args.baseline = Some(PathBuf::from(p));
            }
            "--write-baseline" => {
                let p = it.next().ok_or("--write-baseline requires a file path")?;
                args.write_baseline = Some(PathBuf::from(p));
            }
            "--budget-ms" => {
                let n = it.next().ok_or("--budget-ms requires a number")?;
                let n: u128 = n
                    .parse()
                    .map_err(|_| format!("--budget-ms: `{n}` is not a number"))?;
                args.budget_ms = Some(n);
            }
            "--rule" => {
                let name = it.next().ok_or("--rule requires a rule name")?;
                if !RULES.iter().any(|r| r.name == name) {
                    return Err(format!("unknown rule `{name}` (try --list-rules)"));
                }
                args.rules.push(name);
            }
            "--help" | "-h" => {
                println!(
                    "usage: omen-analyze [--deny-all] [--list-rules] [--json] \
                     [--baseline FILE] [--write-baseline FILE] [--budget-ms N] \
                     [--rule NAME]... [PATH]..."
                );
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    Ok(args)
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("omen-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        println!("{:<26} {:<88} scope", "rule", "summary");
        println!("{} {} {}", "-".repeat(26), "-".repeat(88), "-".repeat(40));
        for r in RULES {
            println!("{:<26} {:<88} {}", r.name, r.summary, r.scope);
        }
        println!("\nescape hatch: // analyze: allow(<rule>, <reason>)");
        return ExitCode::SUCCESS;
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("omen-analyze: cannot read cwd: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match find_workspace_root(&cwd) {
        Some(r) => r,
        None => cwd.clone(),
    };

    // Explicit paths are taken as given (files or directories); the default
    // is the whole workspace.
    let mut files: Vec<PathBuf> = Vec::new();
    let targets = if args.paths.is_empty() {
        vec![root.clone()]
    } else {
        args.paths.clone()
    };
    for t in &targets {
        let t = if t.is_absolute() {
            t.clone()
        } else {
            cwd.join(t)
        };
        if t.is_dir() {
            match walk_workspace(&t) {
                Ok(mut v) => files.append(&mut v),
                Err(e) => {
                    eprintln!("omen-analyze: walking {}: {e}", t.display());
                    return ExitCode::from(2);
                }
            }
        } else {
            files.push(t);
        }
    }
    files.sort();
    files.dedup();

    let started = Instant::now();
    let mut sources: Vec<(String, String, FileClass)> = Vec::with_capacity(files.len());
    for f in &files {
        let src = match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("omen-analyze: reading {}: {e}", f.display());
                return ExitCode::from(2);
            }
        };
        let rel = f.strip_prefix(&root).unwrap_or(f);
        let class = classify(rel);
        sources.push((rel.display().to_string(), src, class));
    }
    let scanned = sources.len();
    let findings: Vec<Finding> = analyze_sources(&sources)
        .into_iter()
        .filter(|fd| args.rules.is_empty() || args.rules.iter().any(|r| r == fd.rule))
        .collect();
    let wall_ms = started.elapsed().as_millis();

    if let Some(path) = &args.write_baseline {
        let text = baseline::baseline_json(&findings);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("omen-analyze: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "omen-analyze: wrote baseline ({} finding(s)) to {}",
            findings.len(),
            path.display()
        );
    }

    if args.json {
        print!("{}", baseline::findings_json(&findings, scanned, wall_ms));
    } else {
        for fd in &findings {
            println!("{}:{}: [{}] {}", fd.path, fd.line, fd.rule, fd.message);
        }
        // Per-rule counts, findings first, then silent rules — CI surfaces
        // this as the analyzer scoreboard.
        let mut counts: Vec<(usize, &str)> = RULES
            .iter()
            .map(|r| (findings.iter().filter(|f| f.rule == r.name).count(), r.name))
            .collect();
        counts.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(b.1)));
        let line = counts
            .iter()
            .map(|(n, name)| format!("{name}={n}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("omen-analyze: per-rule {line}");
        let verdict = if findings.is_empty() {
            "clean"
        } else {
            "dirty"
        };
        println!(
            "omen-analyze: {} finding(s) in {scanned} file(s) in {wall_ms} ms — {verdict}",
            findings.len()
        );
    }

    if let Some(budget) = args.budget_ms {
        if wall_ms > budget {
            // Soft budget: a notice, never a failure — the analyzer must
            // not become the slow gate, but speed is not correctness.
            eprintln!(
                "omen-analyze: NOTICE analyzer took {wall_ms} ms (soft budget {budget} ms) — \
                 consider trimming the rule set or the walk"
            );
        }
    }

    let mut failed = false;
    if let Some(path) = &args.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("omen-analyze: reading baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let entries = match baseline::parse_baseline(&text) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("omen-analyze: baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let violations = baseline::ratchet(&findings, &entries);
        for v in &violations {
            if v.stale {
                eprintln!(
                    "omen-analyze: STALE baseline entry [{}] {} accepts {} but only {} fire — \
                     shrink the baseline (the ratchet only goes down)",
                    v.rule, v.path, v.accepted, v.actual
                );
            } else {
                eprintln!(
                    "omen-analyze: NEW finding(s) [{}] {}: {} > baseline {} — fix them or \
                     annotate with a reasoned allow",
                    v.rule, v.path, v.actual, v.accepted
                );
            }
        }
        failed |= !violations.is_empty();
    } else if args.deny_all && !findings.is_empty() {
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
