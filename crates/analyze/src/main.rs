//! omen-analyze CLI — runs the domain lints over the workspace.
//!
//! ```sh
//! cargo run --release -p omen-analyze              # warn mode
//! cargo run --release -p omen-analyze -- --deny-all  # CI gate: exit 1 on findings
//! cargo run --release -p omen-analyze -- --list-rules
//! cargo run --release -p omen-analyze -- --rule float-eq crates/linalg
//! ```

use omen_analyze::{analyze_source, classify, walk_workspace, Finding, RULES};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    deny_all: bool,
    list_rules: bool,
    rules: Vec<String>,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny_all: false,
        list_rules: false,
        rules: Vec::new(),
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-all" => args.deny_all = true,
            "--list-rules" => args.list_rules = true,
            "--rule" => {
                let name = it.next().ok_or("--rule requires a rule name")?;
                if !RULES.iter().any(|r| r.name == name) {
                    return Err(format!("unknown rule `{name}` (try --list-rules)"));
                }
                args.rules.push(name);
            }
            "--help" | "-h" => {
                println!(
                    "usage: omen-analyze [--deny-all] [--list-rules] [--rule NAME]... [PATH]..."
                );
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    Ok(args)
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("omen-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        println!("{:<16} {:<72} scope", "rule", "summary");
        println!("{} {} {}", "-".repeat(16), "-".repeat(72), "-".repeat(40));
        for r in RULES {
            println!("{:<16} {:<72} {}", r.name, r.summary, r.scope);
        }
        println!("\nescape hatch: // analyze: allow(<rule>, <reason>)");
        return ExitCode::SUCCESS;
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("omen-analyze: cannot read cwd: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match find_workspace_root(&cwd) {
        Some(r) => r,
        None => cwd.clone(),
    };

    // Explicit paths are taken as given (files or directories); the default
    // is the whole workspace.
    let mut files: Vec<PathBuf> = Vec::new();
    let targets = if args.paths.is_empty() {
        vec![root.clone()]
    } else {
        args.paths.clone()
    };
    for t in &targets {
        let t = if t.is_absolute() {
            t.clone()
        } else {
            cwd.join(t)
        };
        if t.is_dir() {
            match walk_workspace(&t) {
                Ok(mut v) => files.append(&mut v),
                Err(e) => {
                    eprintln!("omen-analyze: walking {}: {e}", t.display());
                    return ExitCode::from(2);
                }
            }
        } else {
            files.push(t);
        }
    }
    files.sort();
    files.dedup();

    let mut findings: Vec<Finding> = Vec::new();
    let mut scanned = 0usize;
    for f in &files {
        let src = match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("omen-analyze: reading {}: {e}", f.display());
                return ExitCode::from(2);
            }
        };
        scanned += 1;
        let rel = f.strip_prefix(&root).unwrap_or(f);
        let class = classify(rel);
        let label = rel.display().to_string();
        findings.extend(
            analyze_source(&label, &src, &class)
                .into_iter()
                .filter(|fd| args.rules.is_empty() || args.rules.iter().any(|r| r == fd.rule)),
        );
    }

    for fd in &findings {
        println!("{}:{}: [{}] {}", fd.path, fd.line, fd.rule, fd.message);
    }
    let verdict = if findings.is_empty() {
        "clean"
    } else {
        "dirty"
    };
    println!(
        "omen-analyze: {} finding(s) in {scanned} file(s) — {verdict}",
        findings.len()
    );
    if args.deny_all && !findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
