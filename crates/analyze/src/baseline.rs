//! Machine-readable output and the finding ratchet.
//!
//! `--json` emits the full finding set (`omen-analyze-findings-v1`);
//! `--write-baseline` condenses it to per-`(rule, path)` counts
//! (`omen-analyze-baseline-v1`), which CI compares against with
//! `--baseline`: a count above the baseline is a **new finding** (fix it
//! or annotate it), a count below is a **stale suppression** (shrink the
//! baseline) — both fail the gate, so the committed number can only go
//! down. The JSON reader is a minimal hand-rolled parser: the crate stays
//! dependency-free.

use crate::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag of the findings report.
pub const FINDINGS_SCHEMA: &str = "omen-analyze-findings-v1";
/// Schema tag of the committed baseline.
pub const BASELINE_SCHEMA: &str = "omen-analyze-baseline-v1";

/// One `(rule, path)` bucket of the committed baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Accepted finding count for that rule in that file.
    pub count: usize,
}

/// One ratchet violation.
#[derive(Debug, Clone)]
pub struct RatchetViolation {
    /// `(rule, path)` bucket.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Findings the analyzer produced now.
    pub actual: usize,
    /// Findings the baseline accepts.
    pub accepted: usize,
    /// True when the baseline entry no longer fires (stale suppression);
    /// false when new findings appeared.
    pub stale: bool,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serializes the full finding set as `omen-analyze-findings-v1`.
pub fn findings_json(findings: &[Finding], files: usize, wall_ms: u128) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{FINDINGS_SCHEMA}\",");
    let _ = writeln!(out, "  \"files\": {files},");
    let _ = writeln!(out, "  \"wall_ms\": {wall_ms},");
    out.push_str("  \"counts\": {");
    let mut first = true;
    for (rule, n) in &counts {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{rule}\": {n}");
    }
    out.push_str(if counts.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"rule\": \"");
        escape_into(&mut out, f.rule);
        out.push_str("\", \"path\": \"");
        escape_into(&mut out, &f.path);
        let _ = write!(out, "\", \"line\": {}, \"message\": \"", f.line);
        escape_into(&mut out, &f.message);
        out.push_str("\"}");
    }
    out.push_str(if findings.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    out.push_str("}\n");
    out
}

/// Condenses findings into sorted `(rule, path)` baseline entries.
pub fn to_entries(findings: &[Finding]) -> Vec<BaselineEntry> {
    let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for f in findings {
        *counts.entry((f.rule, f.path.as_str())).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|((rule, path), count)| BaselineEntry {
            rule: rule.to_string(),
            path: path.to_string(),
            count,
        })
        .collect()
}

/// Serializes findings as a fresh `omen-analyze-baseline-v1` document.
pub fn baseline_json(findings: &[Finding]) -> String {
    let entries = to_entries(findings);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{BASELINE_SCHEMA}\",");
    out.push_str("  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"rule\": \"");
        escape_into(&mut out, &e.rule);
        out.push_str("\", \"path\": \"");
        escape_into(&mut out, &e.path);
        let _ = write!(out, "\", \"count\": {}}}", e.count);
    }
    out.push_str(if entries.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

/// Compares the current findings against a baseline. Empty result means
/// the gate is green.
pub fn ratchet(findings: &[Finding], baseline: &[BaselineEntry]) -> Vec<RatchetViolation> {
    let actual = to_entries(findings);
    let mut merged: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for e in &actual {
        merged
            .entry((e.rule.clone(), e.path.clone()))
            .or_insert((0, 0))
            .0 = e.count;
    }
    for e in baseline {
        merged
            .entry((e.rule.clone(), e.path.clone()))
            .or_insert((0, 0))
            .1 = e.count;
    }
    merged
        .into_iter()
        .filter(|&(_, (a, b))| a != b)
        .map(|((rule, path), (actual, accepted))| RatchetViolation {
            rule,
            path,
            actual,
            accepted,
            stale: actual < accepted,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (baseline documents only)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Reader<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Reader<'a> {
    fn ws(&mut self) {
        while self
            .s
            .get(self.i)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        self.ws();
        if self.s.get(self.i) == Some(&b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} of baseline JSON",
                b as char, self.i
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.s.get(self.i) {
            Some(b'"') => self.string().map(Json::Str),
            Some(b'{') => {
                self.i += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.s.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.expect_byte(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.ws();
                    match self.s.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.s.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    match self.s.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
                    }
                }
            }
            Some(b't') if self.s[self.i..].starts_with(b"true") => {
                self.i += 4;
                Ok(Json::Bool(true))
            }
            Some(b'f') if self.s[self.i..].starts_with(b"false") => {
                self.i += 5;
                Ok(Json::Bool(false))
            }
            Some(b'n') if self.s[self.i..].starts_with(b"null") => {
                self.i += 4;
                Ok(Json::Null)
            }
            Some(_) => {
                let start = self.i;
                while self.s.get(self.i).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.i += 1;
                }
                let text = std::str::from_utf8(&self.s[start..self.i])
                    .map_err(|_| "non-utf8 number".to_string())?;
                text.parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| format!("bad number `{text}` at byte {start}"))
            }
            None => Err("unexpected end of baseline JSON".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.ws();
        if self.s.get(self.i) != Some(&b'"') {
            return Err(format!("expected string at byte {}", self.i));
        }
        self.i += 1;
        let mut out = String::new();
        loop {
            match self.s.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.s.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.i += 4;
                                }
                                None => return Err("bad \\u escape".to_string()),
                            }
                        }
                        _ => return Err("bad escape in baseline JSON".to_string()),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.i;
                    self.i += 1;
                    while self.s.get(self.i).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.i += 1;
                    }
                    match std::str::from_utf8(&self.s[start..self.i]) {
                        Ok(frag) => out.push_str(frag),
                        Err(_) => return Err("non-utf8 string".to_string()),
                    }
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }
}

/// Parses a committed `omen-analyze-baseline-v1` document.
///
/// # Errors
///
/// Returns a description of the first syntax problem, a schema mismatch,
/// or a malformed entry — CI treats any of these as a configuration error,
/// not a clean gate.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut r = Reader {
        s: text.as_bytes(),
        i: 0,
    };
    let doc = r.value()?;
    let Json::Obj(fields) = doc else {
        return Err("baseline root must be an object".to_string());
    };
    let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    match get("schema") {
        Some(Json::Str(s)) if s == BASELINE_SCHEMA => {}
        Some(Json::Str(s)) => return Err(format!("unknown baseline schema `{s}`")),
        _ => return Err("baseline missing \"schema\"".to_string()),
    }
    let Some(Json::Arr(items)) = get("entries") else {
        return Err("baseline missing \"entries\" array".to_string());
    };
    let mut entries = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let Json::Obj(f) = item else {
            return Err(format!("entry {i} is not an object"));
        };
        let get = |name: &str| f.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let (Some(Json::Str(rule)), Some(Json::Str(path)), Some(Json::Num(count))) =
            (get("rule"), get("path"), get("count"))
        else {
            return Err(format!(
                "entry {i} needs string rule/path and numeric count"
            ));
        };
        if *count < 0.0 || count.fract() != 0.0 {
            return Err(format!("entry {i} count must be a non-negative integer"));
        }
        entries.push(BaselineEntry {
            rule: rule.clone(),
            path: path.clone(),
            count: *count as usize,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, path: &str, line: u32) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: "m \"q\"\n".to_string(),
        }
    }

    #[test]
    fn baseline_round_trips_through_the_parser() {
        let findings = vec![
            f("float-eq", "crates/a.rs", 3),
            f("float-eq", "crates/a.rs", 9),
            f("tag-conflict", "crates/b.rs", 1),
        ];
        let text = baseline_json(&findings);
        let entries = parse_baseline(&text).unwrap();
        assert_eq!(entries, to_entries(&findings));
        assert!(ratchet(&findings, &entries).is_empty());
    }

    #[test]
    fn ratchet_flags_new_and_stale() {
        let baseline = parse_baseline(&baseline_json(&[f("float-eq", "a.rs", 1)])).unwrap();
        // New finding in another file.
        let v = ratchet(
            &[f("float-eq", "a.rs", 1), f("float-eq", "b.rs", 2)],
            &baseline,
        );
        assert_eq!(v.len(), 1);
        assert!(!v[0].stale && v[0].path == "b.rs");
        // Baseline entry stopped firing.
        let v = ratchet(&[], &baseline);
        assert_eq!(v.len(), 1);
        assert!(v[0].stale);
    }

    #[test]
    fn malformed_baselines_are_config_errors() {
        for bad in [
            "",
            "[]",
            "{\"schema\": \"other\", \"entries\": []}",
            "{\"entries\": []}",
            "{\"schema\": \"omen-analyze-baseline-v1\"}",
            "{\"schema\": \"omen-analyze-baseline-v1\", \"entries\": [{\"rule\": \"r\"}]}",
            "{\"schema\": \"omen-analyze-baseline-v1\", \"entries\": [{\"rule\": \"r\", \
             \"path\": \"p\", \"count\": 1.5}]}",
        ] {
            assert!(parse_baseline(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn findings_json_escapes_and_counts() {
        let text = findings_json(&[f("float-eq", "a.rs", 3)], 7, 12);
        assert!(text.contains("\"schema\": \"omen-analyze-findings-v1\""));
        assert!(text.contains("\"files\": 7"));
        assert!(text.contains("\"float-eq\": 1"));
        assert!(text.contains("m \\\"q\\\"\\n"));
    }
}
