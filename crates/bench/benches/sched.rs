//! Scheduler load-balance benchmark — static round-robin assignment vs
//! the dynamic pull-based scheduler on a synthetic workload with a known
//! cost skew.
//!
//! The workload mimics the energy-sweep cost profile the scheduler was
//! built for: a periodic comb of expensive units (resonances and subband
//! onsets recur at near-regular energy spacing, and the lead decimation
//! converges slowest there) riding on a cheap baseline. The comb period is
//! commensurate with the round-robin stride — `2 · ranks` — so the static
//! `assign` piles every spike onto rank 0, exactly the degenerate case a
//! fixed cyclic split cannot avoid; the dynamic scheduler streams chunks
//! to whichever worker is idle and never sees the alignment. Both sweeps run
//! on `omen-parsim` threads-as-ranks with per-unit sleeps standing in for
//! solve time, and the per-rank busy seconds are condensed into the
//! max/mean load-imbalance ratio recorded in `BENCH_sched.json`.
//!
//! `--smoke` shrinks the sleeps and writes to
//! `target/BENCH_sched.smoke.json` instead — the CI gate uses it to
//! exercise the full protocol and the JSON emitter on every run without
//! touching the committed baseline.

use omen_bench::sched_json::{self, SchedRecord};
use omen_core::parallel::assign;
use omen_parsim::{run_ranks, Comm};
use omen_sched::{dynamic_sweep, imbalance_ratio, CostModel, SchedOptions};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The skewed workload: every `stride`-th unit costs `spike`, the rest
/// cost `base` — a resonance comb, in canonical unit order.
struct Workload {
    units: usize,
    stride: usize,
    base: Duration,
    spike: Duration,
}

impl Workload {
    fn cost(&self, id: usize) -> Duration {
        if id.is_multiple_of(self.stride) {
            self.spike
        } else {
            self.base
        }
    }

    fn energies(&self) -> Vec<f64> {
        (0..self.units).map(|i| i as f64).collect()
    }
}

/// Static sweep: every rank solves its round-robin `assign` share, exactly
/// like the static energy-group distribution in `omen_core::parallel`.
/// Returns `(wall_s, imbalance)`.
fn run_static(w: &Workload, ranks: usize) -> (f64, f64) {
    let t0 = Instant::now();
    let out = run_ranks(ranks, |ctx| {
        let mine = assign(w.units, ctx.size(), ctx.rank());
        let t = Instant::now();
        for id in mine {
            std::thread::sleep(w.cost(id));
        }
        t.elapsed().as_secs_f64()
    });
    let wall = t0.elapsed().as_secs_f64();
    let busy: Vec<f64> = out.results.into_iter().map(|r| r.unwrap()).collect();
    (wall, imbalance_ratio(&busy))
}

/// Dynamic sweep over the same units with a flat cost prior (the scheduler
/// gets no hint of the skew). Returns `(wall_s, imbalance, reissued)`.
fn run_dynamic(w: &Workload, ranks: usize) -> (f64, f64, usize) {
    let opts = SchedOptions {
        chunk_max: 2,
        ..SchedOptions::default()
    };
    let es = w.energies();
    let t0 = Instant::now();
    let out = run_ranks(ranks, |ctx| {
        let world = Comm::world(ctx);
        let mut model = CostModel::uniform(w.units);
        dynamic_sweep(&world, &es, &mut model, &opts, |id| {
            std::thread::sleep(w.cost(id));
            Ok(vec![id as f64])
        })
        .unwrap()
    });
    let wall = t0.elapsed().as_secs_f64();
    let outcome = out
        .results
        .into_iter()
        .next()
        .expect("at least one rank")
        .unwrap();
    assert!(outcome.report.is_clean(), "synthetic solve never fails");
    assert_eq!(outcome.report.solved, w.units);
    let reissued = outcome.stats.reissued_failed + outcome.stats.reissued_straggler;
    (wall, outcome.stats.imbalance(), reissued)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (w, ranks) = if smoke {
        (
            Workload {
                units: 18,
                stride: 6,
                base: Duration::from_millis(1),
                spike: Duration::from_millis(10),
            },
            3,
        )
    } else {
        (
            Workload {
                units: 64,
                stride: 8,
                base: Duration::from_millis(4),
                spike: Duration::from_millis(40),
            },
            4,
        )
    };
    println!(
        "omen-bench sched ({}): {} units (spike every {}), {}/{} ms base/spike, {ranks} ranks",
        if smoke { "smoke" } else { "full" },
        w.units,
        w.stride,
        w.base.as_millis(),
        w.spike.as_millis()
    );

    let (wall_s, imb_s) = run_static(&w, ranks);
    let (wall_d, imb_d, reissued) = run_dynamic(&w, ranks);
    println!("static   wall {wall_s:.3} s  imbalance {imb_s:.3}");
    println!("dynamic  wall {wall_d:.3} s  imbalance {imb_d:.3}  reissued {reissued}");
    assert!(
        imb_d <= imb_s,
        "dynamic scheduling must not be less balanced than static on the skewed workload"
    );

    let case = "resonance-comb";
    let records = vec![
        SchedRecord {
            case: case.into(),
            schedule: "static".into(),
            ranks,
            units: w.units,
            wall_s,
            imbalance: imb_s,
            reissued: 0,
        },
        SchedRecord {
            case: case.into(),
            schedule: "dynamic".into(),
            ranks,
            units: w.units,
            wall_s: wall_d,
            imbalance: imb_d,
            reissued,
        },
    ];

    let path: PathBuf = if smoke {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_sched.smoke.json")
    } else {
        sched_json::default_path()
    };
    sched_json::merge_records(&path, &records).expect("write scheduler baseline");
    let back = sched_json::read_records(&path).expect("re-read scheduler baseline");
    assert!(
        records.iter().all(|r| back.iter().any(|b| (
            b.case.as_str(),
            b.schedule.as_str(),
            b.ranks
        ) == (
            r.case.as_str(),
            r.schedule.as_str(),
            r.ranks
        ))),
        "baseline round-trip lost records"
    );
    println!(
        "wrote {} sched records -> {}",
        records.len(),
        path.display()
    );
}
