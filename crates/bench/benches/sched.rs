//! Scheduler load-balance benchmark — static round-robin assignment vs
//! the dynamic pull-based scheduler on a synthetic workload with a known
//! cost skew.
//!
//! The workload mimics the energy-sweep cost profile the scheduler was
//! built for: a periodic comb of expensive units (resonances and subband
//! onsets recur at near-regular energy spacing, and the lead decimation
//! converges slowest there) riding on a cheap baseline. The comb period is
//! commensurate with the round-robin stride — `2 · ranks` — so the static
//! `assign` piles every spike onto rank 0, exactly the degenerate case a
//! fixed cyclic split cannot avoid; the dynamic scheduler streams chunks
//! to whichever worker is idle and never sees the alignment. Both sweeps run
//! on `omen-parsim` threads-as-ranks with per-unit sleeps standing in for
//! solve time, and the per-rank busy seconds are condensed into the
//! max/mean load-imbalance ratio recorded in `BENCH_sched.json`.
//!
//! A second case, `iv-multibias`, measures the whole-curve dataflow the
//! I–V driver uses: several bias points, each a unified `k × E` unit grid.
//! The static leg reproduces the nested momentum × energy split (each
//! momentum group owns one k point and round-robins its energies), so a
//! k point with a resonance comb pins its whole group while the flat
//! k point's group drains early — an imbalance no per-group balancer can
//! fix. The dynamic leg runs one `dynamic_sweep` over the unified grid
//! per bias point, warm-starting its cost models across bias points
//! through a [`ModelBank`] exactly like
//! `omen_core::parallel::parallel_transmission_k_banked`: from the second
//! bias point onward the first hand-out is LPT over measured costs.
//!
//! `--smoke` shrinks the sleeps and writes to
//! `target/BENCH_sched.smoke.json` instead — the CI gate uses it to
//! exercise the full protocol and the JSON emitter on every run without
//! touching the committed baseline.

use omen_bench::sched_json::{self, SchedRecord};
use omen_core::parallel::assign;
use omen_parsim::{run_ranks, Comm};
use omen_sched::{dynamic_sweep, imbalance_ratio, CostModel, ModelBank, SchedOptions, SchedStats};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The skewed workload: every `stride`-th unit costs `spike`, the rest
/// cost `base` — a resonance comb, in canonical unit order.
struct Workload {
    units: usize,
    stride: usize,
    base: Duration,
    spike: Duration,
}

impl Workload {
    fn cost(&self, id: usize) -> Duration {
        if id.is_multiple_of(self.stride) {
            self.spike
        } else {
            self.base
        }
    }

    fn energies(&self) -> Vec<f64> {
        (0..self.units).map(|i| i as f64).collect()
    }
}

/// Static sweep: every rank solves its round-robin `assign` share, exactly
/// like the static energy-group distribution in `omen_core::parallel`.
/// Returns `(wall_s, imbalance)`.
fn run_static(w: &Workload, ranks: usize) -> (f64, f64) {
    let t0 = Instant::now();
    let out = run_ranks(ranks, |ctx| {
        let mine = assign(w.units, ctx.size(), ctx.rank());
        let t = Instant::now();
        for id in mine {
            std::thread::sleep(w.cost(id));
        }
        t.elapsed().as_secs_f64()
    });
    let wall = t0.elapsed().as_secs_f64();
    let busy: Vec<f64> = out.results.into_iter().map(|r| r.unwrap()).collect();
    (wall, imbalance_ratio(&busy))
}

/// Dynamic sweep over the same units with a flat cost prior (the scheduler
/// gets no hint of the skew). Returns `(wall_s, imbalance, reissued)`.
fn run_dynamic(w: &Workload, ranks: usize) -> (f64, f64, usize) {
    let opts = SchedOptions {
        chunk_max: 2,
        ..SchedOptions::default()
    };
    let es = w.energies();
    let t0 = Instant::now();
    let out = run_ranks(ranks, |ctx| {
        let world = Comm::world(ctx);
        let mut model = CostModel::uniform(w.units);
        dynamic_sweep(&world, &es, &mut model, &opts, |id| {
            std::thread::sleep(w.cost(id));
            Ok(vec![id as f64])
        })
        .unwrap()
    });
    let wall = t0.elapsed().as_secs_f64();
    let outcome = out
        .results
        .into_iter()
        .next()
        .expect("at least one rank")
        .unwrap();
    assert!(outcome.report.is_clean(), "synthetic solve never fails");
    assert_eq!(outcome.report.solved, w.units);
    let reissued = outcome.stats.reissued_failed + outcome.stats.reissued_straggler;
    (wall, outcome.stats.imbalance(), reissued)
}

/// The I–V sweep workload: `bias` bias points, each one unified grid of
/// `n_k` momentum groups × `n_e` energies (unit `id = ik · n_e + ie`).
/// Momentum group 0 carries a resonance comb (every third energy costs
/// `spike`); the other k points are flat `base` — the skew is *between*
/// k points, which a per-group energy balancer cannot see.
struct IvWorkload {
    bias: usize,
    n_k: usize,
    n_e: usize,
    base: Duration,
    spike: Duration,
}

impl IvWorkload {
    /// Units per bias point (one dynamic sweep).
    fn grid(&self) -> usize {
        self.n_k * self.n_e
    }

    /// Units over the whole curve (what the records report).
    fn units(&self) -> usize {
        self.bias * self.grid()
    }

    fn cost(&self, id: usize) -> Duration {
        let (ik, ie) = (id / self.n_e, id % self.n_e);
        if ik == 0 && ie.is_multiple_of(3) {
            self.spike
        } else {
            self.base
        }
    }

    fn energies(&self) -> Vec<f64> {
        (0..self.grid()).map(|i| i as f64).collect()
    }
}

/// Static nested split, exactly the shape `omen_core::parallel` uses for
/// `Schedule::Static`: ranks divide into `n_k` momentum groups, group
/// `g` owns k point `g`, and each group round-robins its energies over
/// its members. Busy seconds accumulate across all bias points.
/// Returns `(wall_s, imbalance)`.
fn run_iv_static(w: &IvWorkload, ranks: usize) -> (f64, f64) {
    assert_eq!(
        ranks % w.n_k,
        0,
        "iv-multibias static split needs ranks % n_k == 0"
    );
    let per = ranks / w.n_k;
    let t0 = Instant::now();
    let out = run_ranks(ranks, |ctx| {
        let (ik, erank) = (ctx.rank() / per, ctx.rank() % per);
        let mine = assign(w.n_e, per, erank);
        let t = Instant::now();
        for _ in 0..w.bias {
            for &ie in &mine {
                std::thread::sleep(w.cost(ik * w.n_e + ie));
            }
        }
        t.elapsed().as_secs_f64()
    });
    let wall = t0.elapsed().as_secs_f64();
    let busy: Vec<f64> = out.results.into_iter().map(|r| r.unwrap()).collect();
    (wall, imbalance_ratio(&busy))
}

/// Whole-curve dynamic sweep: one `dynamic_sweep` over the unified
/// `k × E` grid per bias point, per-(bias, k) cost models carried across
/// bias points in a [`ModelBank`] (checkout → concat → sweep → split →
/// commit, the `parallel_transmission_k_banked` lifecycle). Returns
/// `(wall_s, imbalance, reissued)` aggregated over the whole curve.
fn run_iv_dynamic(w: &IvWorkload, ranks: usize) -> (f64, f64, usize) {
    // A non-blocking poll keeps the solving coordinator competitive: it
    // only picks up a unit once its mailbox drains, and with three workers
    // streaming results the default 5 ms window almost never does.
    let opts = SchedOptions {
        chunk_max: 2,
        poll_ms: 0,
        ..SchedOptions::default()
    };
    let es = w.energies();
    let t0 = Instant::now();
    let out = run_ranks(ranks, |ctx| {
        let world = Comm::world(ctx);
        let mut bank = ModelBank::new();
        let mut agg = SchedStats::default();
        for bias in 0..w.bias {
            let parts: Vec<CostModel> = (0..w.n_k)
                .map(|ik| bank.checkout(bias, ik, w.n_e, || CostModel::band_edge(w.n_e, 2.0)))
                .collect();
            let mut model = CostModel::concat(&parts);
            let outcome = dynamic_sweep(&world, &es, &mut model, &opts, |id| {
                std::thread::sleep(w.cost(id));
                Ok(vec![id as f64])
            })
            .unwrap();
            assert!(outcome.report.is_clean(), "synthetic solve never fails");
            assert_eq!(outcome.report.solved, w.grid());
            for (ik, part) in model.split(w.n_e).into_iter().enumerate() {
                bank.commit(bias, ik, part);
            }
            agg.absorb(&outcome.stats);
        }
        (agg, bank.lifetime_counts())
    });
    let wall = t0.elapsed().as_secs_f64();
    let (agg, counts) = out
        .results
        .into_iter()
        .next()
        .expect("at least one rank")
        .unwrap();
    // The bank must seed only on the first bias point and warm-start every
    // later one — the whole point of sweep-lifetime cost models.
    assert_eq!(counts.seeded, w.n_k, "only the first bias point may seed");
    assert_eq!(counts.warmed, w.n_k * (w.bias - 1));
    let reissued = agg.reissued_failed + agg.reissued_straggler;
    (wall, agg.imbalance(), reissued)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (w, ranks) = if smoke {
        (
            Workload {
                units: 18,
                stride: 6,
                base: Duration::from_millis(1),
                spike: Duration::from_millis(10),
            },
            3,
        )
    } else {
        (
            Workload {
                units: 64,
                stride: 8,
                base: Duration::from_millis(4),
                spike: Duration::from_millis(40),
            },
            4,
        )
    };
    println!(
        "omen-bench sched ({}): {} units (spike every {}), {}/{} ms base/spike, {ranks} ranks",
        if smoke { "smoke" } else { "full" },
        w.units,
        w.stride,
        w.base.as_millis(),
        w.spike.as_millis()
    );

    let (wall_s, imb_s) = run_static(&w, ranks);
    let (wall_d, imb_d, reissued) = run_dynamic(&w, ranks);
    println!("static   wall {wall_s:.3} s  imbalance {imb_s:.3}");
    println!("dynamic  wall {wall_d:.3} s  imbalance {imb_d:.3}  reissued {reissued}");
    assert!(
        imb_d <= imb_s,
        "dynamic scheduling must not be less balanced than static on the skewed workload"
    );

    let case = "resonance-comb";
    let mut records = vec![
        SchedRecord {
            case: case.into(),
            schedule: "static".into(),
            ranks,
            units: w.units,
            wall_s,
            imbalance: imb_s,
            reissued: 0,
        },
        SchedRecord {
            case: case.into(),
            schedule: "dynamic".into(),
            ranks,
            units: w.units,
            wall_s: wall_d,
            imbalance: imb_d,
            reissued,
        },
    ];

    let (iv, iv_ranks) = if smoke {
        (
            IvWorkload {
                bias: 2,
                n_k: 2,
                n_e: 9,
                base: Duration::from_millis(2),
                spike: Duration::from_millis(12),
            },
            4,
        )
    } else {
        (
            IvWorkload {
                bias: 3,
                n_k: 2,
                n_e: 18,
                base: Duration::from_millis(6),
                spike: Duration::from_millis(36),
            },
            4,
        )
    };
    println!(
        "omen-bench sched iv-multibias ({}): {} bias × {} k × {} E = {} units, \
         {}/{} ms base/spike, {iv_ranks} ranks",
        if smoke { "smoke" } else { "full" },
        iv.bias,
        iv.n_k,
        iv.n_e,
        iv.units(),
        iv.base.as_millis(),
        iv.spike.as_millis()
    );
    let (iv_wall_s, iv_imb_s) = run_iv_static(&iv, iv_ranks);
    let (iv_wall_d, iv_imb_d, iv_reissued) = run_iv_dynamic(&iv, iv_ranks);
    println!("static   wall {iv_wall_s:.3} s  imbalance {iv_imb_s:.3}");
    println!("dynamic  wall {iv_wall_d:.3} s  imbalance {iv_imb_d:.3}  reissued {iv_reissued}");
    // The nested static split is only mildly skewed (unlike the degenerate
    // resonance comb), so at smoke-sized millisecond sleeps the comparison
    // is noise; the smoke floors in TOLERANCES.toml still catch catastrophe.
    if !smoke {
        assert!(
            iv_imb_d <= iv_imb_s,
            "whole-curve dynamic must not be less balanced than the nested static split"
        );
        assert!(
            iv_wall_d < iv_wall_s,
            "whole-curve dynamic must beat the nested static split on wall clock \
             ({iv_wall_d:.3} s vs {iv_wall_s:.3} s)"
        );
    }
    records.push(SchedRecord {
        case: "iv-multibias".into(),
        schedule: "static".into(),
        ranks: iv_ranks,
        units: iv.units(),
        wall_s: iv_wall_s,
        imbalance: iv_imb_s,
        reissued: 0,
    });
    records.push(SchedRecord {
        case: "iv-multibias".into(),
        schedule: "dynamic".into(),
        ranks: iv_ranks,
        units: iv.units(),
        wall_s: iv_wall_d,
        imbalance: iv_imb_d,
        reissued: iv_reissued,
    });

    let path: PathBuf = if smoke {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_sched.smoke.json")
    } else {
        sched_json::default_path()
    };
    sched_json::merge_records(&path, &records).expect("write scheduler baseline");
    let back = sched_json::read_records(&path).expect("re-read scheduler baseline");
    assert!(
        records.iter().all(|r| back.iter().any(|b| (
            b.case.as_str(),
            b.schedule.as_str(),
            b.ranks
        ) == (
            r.case.as_str(),
            r.schedule.as_str(),
            r.ranks
        ))),
        "baseline round-trip lost records"
    );
    println!(
        "wrote {} sched records -> {}",
        records.len(),
        path.display()
    );
}
