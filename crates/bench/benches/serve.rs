//! Service benchmark — the `omen-serve` daemon under concurrent clients
//! with a synthetic (instant) executor, so the measured cost is the
//! service machinery itself: framing, admission, dedupe, the result
//! cache, and progress fan-out, not the solver.
//!
//! Two canonical cases, recorded in `BENCH_serve.json`:
//!
//! - `unique-jobs` — every submission is a globally distinct request, so
//!   every job pays the full enqueue→solve→stream path and the dedupe
//!   hit rate is ~0. This is the service's base throughput.
//! - `dedupe-storm` — every client submits the *same* request, the
//!   worst-case thundering herd. After the first solve, every job must
//!   join in flight or replay from the cache; the dedupe hit rate is the
//!   fraction that never started a fresh solve, and the case regresses
//!   if the sharing machinery stops working even when throughput looks
//!   healthy.
//!
//! `--smoke` shrinks the job counts and writes to
//! `target/BENCH_serve.smoke.json` instead — the CI gate uses it to
//! exercise the daemon, the protocol, and the JSON emitter on every run
//! without touching the committed baseline.

use omen_bench::serve_json::{self, ServeRecord};
use omen_serve::{Client, Executor, Server, ServerConfig, SweepRequest};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// An executor that "solves" instantly: the payload is the request's own
/// canonical text, so cache-hit bit-identity still means something.
fn instant_executor() -> Executor {
    Arc::new(|req: &SweepRequest, _observe| Ok(req.canonical_text().into_bytes()))
}

/// A valid request whose cache key is unique per `tag` (the gate-voltage
/// endpoint encodes the tag, so every tag is a physically distinct sweep).
fn request(tag: usize) -> String {
    format!(
        "material = single_band_1000\nmode = frozen\nslabs = 6\nn_energy = 5\n\
         vg_points = 2\nvg_start = 0.0\nvg_stop = {:?}\nvds = 0.1\n",
        0.001 * (tag as f64 + 1.0)
    )
}

/// Runs `clients` concurrent connections, each submitting `jobs_each`
/// requests back to back over one connection. `text_for(client, j)`
/// chooses the request, which is what distinguishes the two cases.
fn run_case(
    case: &str,
    clients: usize,
    jobs_each: usize,
    text_for: impl Fn(usize, usize) -> String + Send + Sync + 'static,
) -> ServeRecord {
    let server = Server::start_with_executor(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue_capacity: 256,
            ..ServerConfig::default()
        },
        instant_executor(),
    )
    .expect("bench server starts");
    let addr = server.addr().to_string();
    let text_for = Arc::new(text_for);

    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let text_for = Arc::clone(&text_for);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("bench client connects");
                let mut latencies = Vec::with_capacity(jobs_each);
                for j in 0..jobs_each {
                    let t = Instant::now();
                    client
                        .submit_and_wait(&text_for(c, j))
                        .expect("bench job completes");
                    latencies.push(t.elapsed().as_secs_f64() * 1e3);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("bench client thread"))
        .collect();
    let wall_s = t0.elapsed().as_secs_f64();

    let stats = server.stats();
    server.shutdown_and_join();

    let jobs = clients * jobs_each;
    assert_eq!(
        stats.jobs_accepted as usize, jobs,
        "{case}: every job accepted"
    );
    let hits = stats.jobs_accepted.saturating_sub(stats.solves_started);
    latencies.sort_by(f64::total_cmp);
    ServeRecord {
        case: case.into(),
        clients,
        jobs,
        jobs_per_s: jobs as f64 / wall_s,
        p50_ms: latencies[latencies.len() / 2],
        p99_ms: latencies[(latencies.len() * 99) / 100],
        dedupe_hit_rate: hits as f64 / stats.jobs_accepted as f64,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (clients, jobs_each) = if smoke { (4, 8) } else { (4, 64) };
    println!(
        "omen-bench serve ({}): {clients} clients x {jobs_each} jobs, instant executor",
        if smoke { "smoke" } else { "full" },
    );

    // Every (client, job) pair maps to a globally unique request.
    let unique = run_case("unique-jobs", clients, jobs_each, move |c, j| {
        request(c * jobs_each + j)
    });
    // Every submission is the same request — the thundering herd.
    let storm = run_case("dedupe-storm", clients, jobs_each, |_, _| request(0));

    for r in [&unique, &storm] {
        println!(
            "{:12}  {:.0} jobs/s  p50 {:.3} ms  p99 {:.3} ms  dedupe {:.3}",
            r.case, r.jobs_per_s, r.p50_ms, r.p99_ms, r.dedupe_hit_rate
        );
    }
    assert!(
        unique.dedupe_hit_rate < 0.01,
        "unique jobs must never dedupe (got {})",
        unique.dedupe_hit_rate
    );
    assert!(
        storm.dedupe_hit_rate > 0.5,
        "the storm must share most solves (got {})",
        storm.dedupe_hit_rate
    );

    let records = vec![unique, storm];
    let path: PathBuf = if smoke {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_serve.smoke.json")
    } else {
        serve_json::default_path()
    };
    serve_json::merge_records(&path, &records).expect("write service baseline");
    let back = serve_json::read_records(&path).expect("re-read service baseline");
    assert!(
        records.iter().all(|r| back
            .iter()
            .any(|b| (b.case.as_str(), b.clients) == (r.case.as_str(), r.clients))),
        "baseline round-trip lost records"
    );
    println!(
        "wrote {} serve records -> {}",
        records.len(),
        path.display()
    );
}
