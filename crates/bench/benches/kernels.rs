//! Microbenchmarks for the dense and transport kernels — the performance
//! baselines behind tab2/tab3 and the machine-model calibration in fig7.
//!
//! Self-contained timing harness (`harness = false`): each kernel runs a
//! warm-up pass, then is sampled repeatedly with `std::time::Instant`; the
//! median and minimum per-iteration times are reported, and the dense
//! kernel measurements (GEMM/LU across sizes and thread counts) are merged
//! into the repo-root `BENCH_kernels.json` baseline (schema:
//! `omen_bench::kernel_json`). Run with `cargo bench -p omen-bench`.
//!
//! `--smoke` runs tiny sizes with a single sample and writes the JSON to
//! `target/BENCH_kernels.smoke.json` instead, round-tripping it through
//! the parser — the CI gate uses this to exercise the parallel kernels and
//! the emitter on every run without touching the committed baseline.

use omen_bench::kernel_json::{self, KernelRecord};
use omen_bench::sample_secs;
use omen_lattice::{Crystal, Device};
use omen_linalg::{eigh, flops, gemm_threaded, lu::Lu, threads, Op, ZMat};
use omen_num::{c64, A_SI};
use omen_tb::{DeviceHamiltonian, Material, TbParams};
use std::path::PathBuf;

fn randmat(n: usize, seed: u64) -> ZMat {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
    let mut next = move || {
        s = s.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    ZMat::from_fn(n, n, |_, _| c64::new(next(), next()))
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

fn report(name: &str, (median, min): (f64, f64)) {
    println!(
        "{name:<28} median {:>12}   min {:>12}",
        fmt_time(median),
        fmt_time(min)
    );
}

/// Samples/target scaled down so the big sizes stay affordable.
fn plan(n: usize, smoke: bool) -> (usize, f64) {
    if smoke {
        (1, 0.0)
    } else if n >= 256 {
        (3, 0.0)
    } else {
        (7, 0.02)
    }
}

/// Thread counts measured for one size: the baseline trajectory pins 1, 2
/// and 4 threads at the flagship size so speedup is read straight from the
/// JSON, plus the machine's configured width when it differs.
fn thread_counts(n: usize, flagship: usize) -> Vec<usize> {
    let mut ts = vec![1usize];
    if n >= flagship {
        ts.extend([2, 4]);
        let conf = threads::configured_threads();
        if !ts.contains(&conf) {
            ts.push(conf);
        }
        ts.sort_unstable();
    }
    ts
}

/// True when this process dispatches the AVX2+FMA microkernel — stamped
/// into every record so scalar and SIMD measurements stay separate rows.
fn simd_flag() -> bool {
    threads::simd_path() == threads::SimdPath::Avx2Fma
}

fn bench_gemm(sizes: &[usize], flagship: usize, smoke: bool, out: &mut Vec<KernelRecord>) {
    for &n in sizes {
        let a = randmat(n, 1);
        let b = randmat(n, 2);
        let mut c = ZMat::zeros(n, n);
        let (samples, target) = plan(n, smoke);
        for t in thread_counts(n, flagship) {
            let (median, min) = sample_secs(samples, target, || {
                gemm_threaded(c64::ONE, &a, Op::N, &b, Op::N, c64::ZERO, &mut c, t);
            });
            let gflops = flops::gemm_flops(n, n, n) as f64 / median / 1e9;
            report(&format!("zgemm/{n}/t{t}"), (median, min));
            out.push(KernelRecord {
                kernel: "gemm".into(),
                n,
                threads: t,
                simd: simd_flag(),
                median_s: median,
                min_s: min,
                gflops,
            });
        }
    }
}

fn bench_lu(sizes: &[usize], flagship: usize, smoke: bool, out: &mut Vec<KernelRecord>) {
    for &n in sizes {
        let mut a = randmat(n, 3);
        for i in 0..n {
            a[(i, i)] += c64::real(n as f64);
        }
        let (samples, target) = plan(n, smoke);
        // The LU trailing update picks its width from the ambient policy,
        // so pin it through OMEN_THREADS for the measurement.
        let saved = std::env::var(threads::THREADS_ENV).ok();
        for t in thread_counts(n, flagship) {
            std::env::set_var(threads::THREADS_ENV, t.to_string());
            let (median, min) = sample_secs(samples, target, || {
                Lu::factor(&a).expect("bench matrix is diagonally dominant")
            });
            let gflops = flops::lu_flops(n) as f64 / median / 1e9;
            report(&format!("zgetrf/{n}/t{t}"), (median, min));
            out.push(KernelRecord {
                kernel: "lu".into(),
                n,
                threads: t,
                simd: simd_flag(),
                median_s: median,
                min_s: min,
                gflops,
            });
        }
        match saved {
            Some(v) => std::env::set_var(threads::THREADS_ENV, v),
            None => std::env::remove_var(threads::THREADS_ENV),
        }
    }
}

/// Tree-parallel selected inversion on a synthetic block-tridiagonal
/// system. The flop count is taken from the instrumented kernels (one
/// counted solve), so the reported Gflop/s stays honest as the algorithm
/// evolves.
fn bench_selinv(smoke: bool, out: &mut Vec<KernelRecord>) {
    let (nb, bs, samples, target) = if smoke {
        (12, 8, 1, 0.0)
    } else {
        (24, 24, 7, 0.02)
    };
    let diag: Vec<ZMat> = (0..nb)
        .map(|i| {
            let mut m = randmat(bs, 5 + i as u64);
            for k in 0..bs {
                m[(k, k)] += c64::real(bs as f64 + 4.0);
            }
            m
        })
        .collect();
    let lower: Vec<ZMat> = (0..nb - 1).map(|i| randmat(bs, 100 + i as u64)).collect();
    let upper: Vec<ZMat> = (0..nb - 1).map(|i| randmat(bs, 200 + i as u64)).collect();
    let a = omen_sparse::BlockTridiag::new(diag, lower, upper);
    let gl = randmat(bs, 300).hermitian_part();
    let gr = randmat(bs, 301).hermitian_part();

    flops::reset_flops();
    omen_negf::selinv_solve(&a, &gl, &gr).expect("dominant bench system is regular");
    let work = flops::reset_flops();

    let (median, min) = sample_secs(samples, target, || {
        omen_negf::selinv_solve(&a, &gl, &gr).expect("dominant bench system is regular")
    });
    let gflops = work as f64 / median / 1e9;
    report(&format!("selinv/{nb}x{bs}"), (median, min));
    out.push(KernelRecord {
        kernel: "selinv".into(),
        n: nb * bs,
        threads: 1,
        simd: simd_flag(),
        median_s: median,
        min_s: min,
        gflops,
    });
}

fn bench_eigh() {
    for &n in &[32usize, 64] {
        let a = randmat(n, 4).hermitian_part();
        report(&format!("zheev/{n}"), sample_secs(11, 0.02, || eigh(&a)));
    }
}

fn bench_transport() {
    let p = TbParams::of(Material::SingleBand { t_mev: 1000 });
    let dev = Device::nanowire(Crystal::Zincblende { a: A_SI }, 8, 1.2, 1.2);
    let ham = DeviceHamiltonian::new(&dev, p, false);
    let pot = vec![0.0; dev.num_atoms()];
    let h = ham.assemble(&pot, 0.0);
    let (h00, h01) = ham.lead_blocks(0.0, 0.0);
    let e = -3.2;

    report(
        "transport_point/rgf",
        sample_secs(11, 0.02, || {
            omen_negf::transport_at_energy(e, &h, (&h00, &h01), (&h00, &h01))
        }),
    );
    report(
        "transport_point/wf_thomas",
        sample_secs(11, 0.02, || {
            omen_wf::wf_transport_at_energy(
                e,
                &h,
                (&h00, &h01),
                (&h00, &h01),
                omen_wf::SolverKind::Thomas,
            )
        }),
    );
    report(
        "transport_point/wf_bcr",
        sample_secs(11, 0.02, || {
            omen_wf::wf_transport_at_energy(
                e,
                &h,
                (&h00, &h01),
                (&h00, &h01),
                omen_wf::SolverKind::Bcr,
            )
        }),
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Resolve and announce the kernel dispatch before timing anything, so
    // every printed number and JSON record is attributable to a path.
    omen_core::log::emit_kernel_dispatch();
    println!(
        "omen-bench kernels ({}, {} host threads, {})",
        if smoke {
            "smoke: tiny sizes, 1 sample"
        } else {
            "median/min over samples"
        },
        threads::configured_threads(),
        threads::dispatch_summary()
    );

    let mut records = Vec::new();
    if smoke {
        // Tiny but structurally honest: 60 > the LU panel width, so the
        // blocked path and its threaded trailing GEMM both run.
        bench_gemm(&[24, 40], 40, true, &mut records);
        bench_lu(&[24, 60], 60, true, &mut records);
        bench_selinv(true, &mut records);
    } else {
        bench_gemm(&[64, 128, 256, 512], 512, false, &mut records);
        bench_lu(&[64, 128, 256, 512], 512, false, &mut records);
        bench_selinv(false, &mut records);
        bench_eigh();
        bench_transport();
    }

    let path: PathBuf = if smoke {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/BENCH_kernels.smoke.json")
    } else {
        kernel_json::default_path()
    };
    kernel_json::merge_records(&path, &records).expect("write benchmark baseline");
    let back = kernel_json::read_records(&path).expect("re-read benchmark baseline");
    assert!(
        records.iter().all(|r| back.iter().any(|b| {
            (b.kernel.as_str(), b.n, b.threads, b.simd)
                == (r.kernel.as_str(), r.n, r.threads, r.simd)
        })),
        "baseline round-trip lost records"
    );
    println!(
        "wrote {} kernel records -> {}",
        records.len(),
        path.display()
    );
}
