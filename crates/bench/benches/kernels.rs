//! Microbenchmarks for the dense and transport kernels — the performance
//! baselines behind tab2/tab3 and the machine-model calibration in fig7.
//!
//! Self-contained timing harness (`harness = false`): each kernel runs a
//! warm-up pass, then is sampled repeatedly with `std::time::Instant`; the
//! median and minimum per-iteration times are reported. Run with
//! `cargo bench -p omen-bench`.

use omen_lattice::{Crystal, Device};
use omen_linalg::{eigh, lu::Lu, matmul, ZMat};
use omen_num::{c64, A_SI};
use omen_tb::{DeviceHamiltonian, Material, TbParams};
use std::hint::black_box;
use std::time::Instant;

fn randmat(n: usize, seed: u64) -> ZMat {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
    let mut next = move || {
        s = s.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    ZMat::from_fn(n, n, |_, _| c64::new(next(), next()))
}

/// Times `f` over enough iterations to fill ~200 ms, reporting
/// (median, min) seconds per iteration.
fn sample<T>(mut f: impl FnMut() -> T) -> (f64, f64) {
    // Warm-up + per-iteration cost estimate.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.02 / once).ceil() as usize).clamp(1, 10_000);
    let samples = 11usize;
    let mut per_iter = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        per_iter.push(t.elapsed().as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(f64::total_cmp);
    (per_iter[samples / 2], per_iter[0])
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

fn report(name: &str, (median, min): (f64, f64)) {
    println!(
        "{name:<28} median {:>12}   min {:>12}",
        fmt_time(median),
        fmt_time(min)
    );
}

fn bench_gemm() {
    for &n in &[32usize, 64, 128] {
        let a = randmat(n, 1);
        let b = randmat(n, 2);
        report(&format!("zgemm/{n}"), sample(|| matmul(&a, &b)));
    }
}

fn bench_lu() {
    for &n in &[32usize, 64, 128] {
        let mut a = randmat(n, 3);
        for i in 0..n {
            a[(i, i)] += c64::real(n as f64);
        }
        report(
            &format!("zgetrf+inverse/{n}"),
            sample(|| Lu::factor(&a).unwrap().inverse()),
        );
    }
}

fn bench_eigh() {
    for &n in &[32usize, 64] {
        let a = randmat(n, 4).hermitian_part();
        report(&format!("zheev/{n}"), sample(|| eigh(&a)));
    }
}

fn bench_transport() {
    let p = TbParams::of(Material::SingleBand { t_mev: 1000 });
    let dev = Device::nanowire(Crystal::Zincblende { a: A_SI }, 8, 1.2, 1.2);
    let ham = DeviceHamiltonian::new(&dev, p, false);
    let pot = vec![0.0; dev.num_atoms()];
    let h = ham.assemble(&pot, 0.0);
    let (h00, h01) = ham.lead_blocks(0.0, 0.0);
    let e = -3.2;

    report(
        "transport_point/rgf",
        sample(|| omen_negf::transport_at_energy(e, &h, (&h00, &h01), (&h00, &h01))),
    );
    report(
        "transport_point/wf_thomas",
        sample(|| {
            omen_wf::wf_transport_at_energy(
                e,
                &h,
                (&h00, &h01),
                (&h00, &h01),
                omen_wf::SolverKind::Thomas,
            )
        }),
    );
    report(
        "transport_point/wf_bcr",
        sample(|| {
            omen_wf::wf_transport_at_energy(
                e,
                &h,
                (&h00, &h01),
                (&h00, &h01),
                omen_wf::SolverKind::Bcr,
            )
        }),
    );
}

fn main() {
    println!("omen-bench kernels (median/min of 11 samples)");
    bench_gemm();
    bench_lu();
    bench_eigh();
    bench_transport();
}
