//! Criterion microbenchmarks for the dense and transport kernels — the
//! performance baselines behind tab2/tab3 and the machine-model
//! calibration in fig7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omen_lattice::{Crystal, Device};
use omen_linalg::{eigh, lu::Lu, matmul, ZMat};
use omen_num::{c64, A_SI};
use omen_tb::{DeviceHamiltonian, Material, TbParams};

fn randmat(n: usize, seed: u64) -> ZMat {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
    let mut next = move || {
        s = s.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    ZMat::from_fn(n, n, |_, _| c64::new(next(), next()))
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("zgemm");
    for &n in &[32usize, 64, 128] {
        let a = randmat(n, 1);
        let b = randmat(n, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| matmul(&a, &b))
        });
    }
    g.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("zgetrf+inverse");
    for &n in &[32usize, 64, 128] {
        let mut a = randmat(n, 3);
        for i in 0..n {
            a[(i, i)] += c64::real(n as f64);
        }
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| Lu::factor(&a).unwrap().inverse())
        });
    }
    g.finish();
}

fn bench_eigh(c: &mut Criterion) {
    let mut g = c.benchmark_group("zheev");
    g.sample_size(10);
    for &n in &[32usize, 64] {
        let a = randmat(n, 4).hermitian_part();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| bch.iter(|| eigh(&a)));
    }
    g.finish();
}

fn bench_transport(c: &mut Criterion) {
    let p = TbParams::of(Material::SingleBand { t_mev: 1000 });
    let dev = Device::nanowire(Crystal::Zincblende { a: A_SI }, 8, 1.2, 1.2);
    let ham = DeviceHamiltonian::new(&dev, p, false);
    let pot = vec![0.0; dev.num_atoms()];
    let h = ham.assemble(&pot, 0.0);
    let (h00, h01) = ham.lead_blocks(0.0, 0.0);
    let e = -3.2;

    let mut g = c.benchmark_group("transport_point");
    g.sample_size(10);
    g.bench_function("rgf", |b| {
        b.iter(|| omen_negf::transport_at_energy(e, &h, (&h00, &h01), (&h00, &h01)))
    });
    g.bench_function("wf_thomas", |b| {
        b.iter(|| {
            omen_wf::wf_transport_at_energy(
                e,
                &h,
                (&h00, &h01),
                (&h00, &h01),
                omen_wf::SolverKind::Thomas,
            )
        })
    });
    g.bench_function("wf_bcr", |b| {
        b.iter(|| {
            omen_wf::wf_transport_at_energy(
                e,
                &h,
                (&h00, &h01),
                (&h00, &h01),
                omen_wf::SolverKind::Bcr,
            )
        })
    });
    g.finish();
}

fn bench_sancho(c: &mut Criterion) {
    let p = TbParams::of(Material::SiSp3s);
    let dev = Device::nanowire(Crystal::Zincblende { a: A_SI }, 2, 0.8, 0.8);
    let ham = DeviceHamiltonian::new(&dev, p, false);
    let (h00, h01) = ham.lead_blocks(0.0, 0.0);
    let mut g = c.benchmark_group("sancho_rubio");
    g.sample_size(10);
    g.bench_function("sp3s_0.8nm", |b| {
        b.iter(|| {
            omen_negf::sancho::ContactSelfEnergy::compute(
                1.8,
                2e-6,
                &h00,
                &h01,
                omen_negf::sancho::Side::Left,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_gemm, bench_lu, bench_eigh, bench_transport, bench_sancho);
criterion_main!(benches);
