//! Bench-regression gate — compares throughput baselines against the
//! guardbands declared in the repo-root `TOLERANCES.toml`.
//!
//! Two checks, both release-blocking in `ci.sh` (via the `bench-gate`
//! binary in `src/bin/bench_gate.rs`):
//!
//! 1. **Committed-baseline validation** (always): every record in the
//!    committed `BENCH_kernels.json` must clear its `[[kernel_guardband]]`
//!    floor — `reference_gflops · (1 − guardband)` — every record in
//!    `BENCH_sched.json` must stay under its `[[sched_guardband]]`
//!    imbalance ceiling, and every record in `BENCH_serve.json` must
//!    clear its `[[serve_guardband]]` throughput floor and minimum
//!    dedupe hit rate. This is deterministic (no timing involved): it
//!    catches a re-benchmarked baseline that silently regressed past its
//!    guardband at commit time, when the author can still annotate the
//!    policy with a rationale instead of letting the drift land unremarked.
//! 2. **Smoke validation** (`--smoke`): fresh `target/BENCH_*.smoke.json`
//!    records from this very CI run must exist for the current dispatch
//!    leg (both `gemm` and `lu`), clear the catastrophic
//!    `[[kernel_smoke_floor]]` throughput floors, stay under the
//!    `[[sched_smoke_floor]]` imbalance ceilings, and clear the
//!    `[[serve_smoke_floor]]` service throughputs. Smoke floors are set an
//!    order of magnitude below any believable machine so they only trip on
//!    a genuine perf catastrophe (e.g. a debug-mode kernel, a scheduler
//!    serializing every unit), never on CI timing noise.
//!
//! Every failed check becomes one human-readable line in a [`GateReport`];
//! the report never short-circuits, so a broken baseline surfaces all of
//! its problems in one run. Records whose *data* is unreadable (missing
//! files, schema mismatches) surface as typed
//! [`OmenError::InvalidBaseline`](omen_num::OmenError) instead — those are
//! harness bugs, not perf regressions, and exit with a different code.

use crate::kernel_json::KernelRecord;
use crate::sched_json::SchedRecord;
use crate::serve_json::ServeRecord;
use omen_num::tolerance::TolerancePolicy;

/// Outcome of one gate pass: how many records were checked and one line
/// per violated guardband. An empty `failures` list means the gate is
/// green.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Number of baseline records inspected.
    pub checked: usize,
    /// One human-readable line per violated check, in record order.
    pub failures: Vec<String>,
}

impl GateReport {
    /// True when every inspected record cleared its guardband.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Folds another report into this one (summing counts, appending
    /// failures) so the binary can print one combined verdict.
    pub fn merge(&mut self, other: GateReport) {
        self.checked += other.checked;
        self.failures.extend(other.failures);
    }
}

/// Validates the committed kernel baseline: every record must have a
/// `[[kernel_guardband]]` group for its `(kernel, simd)` leg and clear
/// the group's floor `reference_gflops · (1 − guardband)`; timings must
/// be finite and positive. An empty baseline is itself a failure — the
/// gate exists to stop silent drift, and "no records" is the silentest
/// drift of all.
pub fn check_committed_kernels(policy: &TolerancePolicy, records: &[KernelRecord]) -> GateReport {
    let mut report = GateReport::default();
    if records.is_empty() {
        report
            .failures
            .push("committed kernel baseline has no records (BENCH_kernels.json)".into());
        return report;
    }
    for r in records {
        report.checked += 1;
        let tag = format!("{}/n{}/t{}/simd={}", r.kernel, r.n, r.threads, r.simd);
        let finite_positive = |v: f64| v.is_finite() && v > 0.0;
        if !(finite_positive(r.gflops) && finite_positive(r.median_s) && finite_positive(r.min_s)) {
            report.failures.push(format!(
                "kernel record {tag}: non-finite or non-positive measurement \
                 (gflops {}, median_s {}, min_s {})",
                r.gflops, r.median_s, r.min_s
            ));
            continue;
        }
        match policy.kernel_guardband(&r.kernel, r.simd) {
            Err(e) => report.failures.push(format!("kernel record {tag}: {e}")),
            Ok(g) => {
                let floor = g.reference_gflops * (1.0 - g.guardband);
                if r.gflops < floor {
                    report.failures.push(format!(
                        "kernel record {tag}: {:.3} Gflop/s is below the guardband floor \
                         {floor:.3} (reference {:.3}, band {:.0}%) — re-baseline with a \
                         rationale in TOLERANCES.toml or fix the regression",
                        r.gflops,
                        g.reference_gflops,
                        g.guardband * 100.0
                    ));
                }
            }
        }
    }
    report
}

/// Validates the committed scheduler baseline: every record must have a
/// `[[sched_guardband]]` entry for its `(case, schedule)` pair and stay
/// under the entry's imbalance ceiling; wall time must be finite and
/// positive. A guardband carrying `min_speedup` additionally requires a
/// committed `static` record of the same `(case, ranks)` and enforces
/// `static wall / this wall >= min_speedup` — the dynamic scheduler must
/// actually buy wall clock, not merely balance busy time.
pub fn check_committed_sched(policy: &TolerancePolicy, records: &[SchedRecord]) -> GateReport {
    let mut report = GateReport::default();
    if records.is_empty() {
        report
            .failures
            .push("committed scheduler baseline has no records (BENCH_sched.json)".into());
        return report;
    }
    for r in records {
        report.checked += 1;
        let tag = format!("{}/{}/r{}", r.case, r.schedule, r.ranks);
        if !(r.wall_s.is_finite() && r.wall_s > 0.0 && r.imbalance.is_finite()) {
            report.failures.push(format!(
                "sched record {tag}: non-finite or non-positive measurement \
                 (wall_s {}, imbalance {})",
                r.wall_s, r.imbalance
            ));
            continue;
        }
        match policy.sched_guardband(&r.case, &r.schedule) {
            Err(e) => report.failures.push(format!("sched record {tag}: {e}")),
            Ok(g) => {
                if r.imbalance > g.max_imbalance {
                    report.failures.push(format!(
                        "sched record {tag}: imbalance {:.3} exceeds the guardband ceiling \
                         {:.3} — re-baseline with a rationale in TOLERANCES.toml or fix the \
                         regression",
                        r.imbalance, g.max_imbalance
                    ));
                }
                if let Some(min) = g.min_speedup {
                    let partner = records
                        .iter()
                        .find(|o| o.case == r.case && o.ranks == r.ranks && o.schedule == "static");
                    match partner {
                        None => report.failures.push(format!(
                            "sched record {tag}: guardband requires min_speedup {min:.2} but \
                             the baseline has no static record for ({}, r{}) to compare \
                             against",
                            r.case, r.ranks
                        )),
                        Some(st) => {
                            // Both walls already passed the finite/positive
                            // screen above, so the ratio is well-defined.
                            let speedup = st.wall_s / r.wall_s;
                            if speedup < min {
                                report.failures.push(format!(
                                    "sched record {tag}: wall {:.3e} s is only {speedup:.3}× \
                                     faster than static's {:.3e} s (floor {min:.2}×) — the \
                                     dynamic schedule stopped paying for itself",
                                    r.wall_s, st.wall_s
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    report
}

/// Validates fresh `--smoke` kernel records for the current dispatch leg
/// (`simd_leg` is the `simd` flag the running process stamps into
/// records): `gemm`, `lu` and `selinv` must all be present for that leg —
/// a missing kernel means the smoke bench silently skipped a code path —
/// and every leg record must clear its catastrophic
/// `[[kernel_smoke_floor]]`.
pub fn check_smoke_kernels(
    policy: &TolerancePolicy,
    records: &[KernelRecord],
    simd_leg: bool,
) -> GateReport {
    let mut report = GateReport::default();
    let leg: Vec<&KernelRecord> = records.iter().filter(|r| r.simd == simd_leg).collect();
    for required in ["gemm", "lu", "selinv"] {
        if !leg.iter().any(|r| r.kernel == required) {
            report.failures.push(format!(
                "no fresh {required} smoke record for the simd={simd_leg} leg — run \
                 `cargo bench -p omen-bench --bench kernels -- --smoke` on this leg first"
            ));
        }
    }
    for r in leg {
        report.checked += 1;
        let tag = format!("{}/n{}/t{}/simd={}", r.kernel, r.n, r.threads, r.simd);
        match policy.kernel_smoke_floor(&r.kernel) {
            Err(e) => report.failures.push(format!("smoke record {tag}: {e}")),
            Ok(f) => {
                if !(r.gflops.is_finite() && r.gflops >= f.min_gflops) {
                    report.failures.push(format!(
                        "smoke record {tag}: {:.3} Gflop/s is below the catastrophic floor \
                         {:.3} — the kernel path is broken, not merely slow",
                        r.gflops, f.min_gflops
                    ));
                }
            }
        }
    }
    report
}

/// Validates fresh `--smoke` scheduler records: at least one record per
/// schedule (`static`, `dynamic`) must exist, and every record must stay
/// under its `[[sched_smoke_floor]]` imbalance ceiling.
pub fn check_smoke_sched(policy: &TolerancePolicy, records: &[SchedRecord]) -> GateReport {
    let mut report = GateReport::default();
    for required in ["static", "dynamic"] {
        if !records.iter().any(|r| r.schedule == required) {
            report.failures.push(format!(
                "no fresh {required} smoke record — run \
                 `cargo bench -p omen-bench --bench sched -- --smoke` first"
            ));
        }
    }
    for r in records {
        report.checked += 1;
        let tag = format!("{}/{}/r{}", r.case, r.schedule, r.ranks);
        match policy.sched_smoke_floor(&r.case, &r.schedule) {
            Err(e) => report.failures.push(format!("smoke record {tag}: {e}")),
            Ok(f) => {
                if !(r.imbalance.is_finite() && r.imbalance <= f.max_imbalance) {
                    report.failures.push(format!(
                        "smoke record {tag}: imbalance {:.3} exceeds the catastrophic \
                         ceiling {:.3} — the scheduler is serializing work, not merely noisy",
                        r.imbalance, f.max_imbalance
                    ));
                }
            }
        }
    }
    report
}

/// Validates the committed service baseline: every record in
/// `BENCH_serve.json` must have a `[[serve_guardband]]` entry for its
/// `(case, clients)` pair, clear the throughput floor
/// `reference_jobs_per_s · (1 − guardband)`, and meet the entry's
/// minimum dedupe hit rate; latencies must be finite and positive.
pub fn check_committed_serve(policy: &TolerancePolicy, records: &[ServeRecord]) -> GateReport {
    let mut report = GateReport::default();
    if records.is_empty() {
        report
            .failures
            .push("committed service baseline has no records (BENCH_serve.json)".into());
        return report;
    }
    for r in records {
        report.checked += 1;
        let tag = format!("{}/c{}", r.case, r.clients);
        let finite_positive = |v: f64| v.is_finite() && v > 0.0;
        if !(finite_positive(r.jobs_per_s)
            && finite_positive(r.p50_ms)
            && finite_positive(r.p99_ms)
            && r.dedupe_hit_rate.is_finite()
            && (0.0..=1.0).contains(&r.dedupe_hit_rate))
        {
            report.failures.push(format!(
                "serve record {tag}: non-finite or out-of-range measurement \
                 (jobs_per_s {}, p50_ms {}, p99_ms {}, dedupe_hit_rate {})",
                r.jobs_per_s, r.p50_ms, r.p99_ms, r.dedupe_hit_rate
            ));
            continue;
        }
        match policy.serve_guardband(&r.case, r.clients) {
            Err(e) => report.failures.push(format!("serve record {tag}: {e}")),
            Ok(g) => {
                let floor = g.reference_jobs_per_s * (1.0 - g.guardband);
                if r.jobs_per_s < floor {
                    report.failures.push(format!(
                        "serve record {tag}: {:.3} jobs/s is below the guardband floor \
                         {floor:.3} (reference {:.3}, band {:.0}%) — re-baseline with a \
                         rationale in TOLERANCES.toml or fix the regression",
                        r.jobs_per_s,
                        g.reference_jobs_per_s,
                        g.guardband * 100.0
                    ));
                }
                if r.dedupe_hit_rate < g.min_dedupe_hit_rate {
                    report.failures.push(format!(
                        "serve record {tag}: dedupe hit rate {:.3} is below the policy \
                         minimum {:.3} — the dedupe/cache machinery stopped sharing work",
                        r.dedupe_hit_rate, g.min_dedupe_hit_rate
                    ));
                }
            }
        }
    }
    report
}

/// Validates fresh `--smoke` service records: both canonical cases
/// (`unique-jobs`, `dedupe-storm`) must be present — a missing case means
/// the smoke bench silently skipped a service path — and every record
/// must clear its catastrophic `[[serve_smoke_floor]]` throughput floor.
pub fn check_smoke_serve(policy: &TolerancePolicy, records: &[ServeRecord]) -> GateReport {
    let mut report = GateReport::default();
    for required in ["unique-jobs", "dedupe-storm"] {
        if !records.iter().any(|r| r.case == required) {
            report.failures.push(format!(
                "no fresh {required} smoke record — run \
                 `cargo bench -p omen-bench --bench serve -- --smoke` first"
            ));
        }
    }
    for r in records {
        report.checked += 1;
        let tag = format!("{}/c{}", r.case, r.clients);
        match policy.serve_smoke_floor(&r.case) {
            Err(e) => report.failures.push(format!("smoke record {tag}: {e}")),
            Ok(f) => {
                if !(r.jobs_per_s.is_finite() && r.jobs_per_s >= f.min_jobs_per_s) {
                    report.failures.push(format!(
                        "smoke record {tag}: {:.3} jobs/s is below the catastrophic floor \
                         {:.3} — the service path is broken, not merely slow",
                        r.jobs_per_s, f.min_jobs_per_s
                    ));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kernel_json, sched_json, serve_json};

    /// A minimal but complete policy for the gate tests: one guardband per
    /// leg with easy round numbers (gemm scalar floor = 10·(1−0.2) = 8).
    fn test_policy() -> TolerancePolicy {
        TolerancePolicy::parse(
            "gate-test",
            r#"
schema = "omen-tolerances-v1"

[[kernel_guardband]]
kernel = "gemm"
simd = false
reference_gflops = 10.0
guardband = 0.2
rationale = "test floor 8.0"

[[kernel_guardband]]
kernel = "lu"
simd = false
reference_gflops = 5.0
guardband = 0.2
rationale = "test floor 4.0"

[[sched_guardband]]
case = "resonance-comb"
schedule = "dynamic"
max_imbalance = 1.5
rationale = "test ceiling"

[[sched_guardband]]
case = "iv-multibias"
schedule = "dynamic"
max_imbalance = 1.2
min_speedup = 1.5
rationale = "test speedup floor"

[[sched_guardband]]
case = "iv-multibias"
schedule = "static"
max_imbalance = 3.0
rationale = "test bad baseline"

[[kernel_smoke_floor]]
kernel = "gemm"
min_gflops = 0.05
rationale = "catastrophic only"

[[kernel_smoke_floor]]
kernel = "lu"
min_gflops = 0.05
rationale = "catastrophic only"

[[kernel_smoke_floor]]
kernel = "selinv"
min_gflops = 0.05
rationale = "catastrophic only"

[[sched_smoke_floor]]
case = "resonance-comb"
schedule = "dynamic"
max_imbalance = 1.9
rationale = "catastrophic only"

[[sched_smoke_floor]]
case = "resonance-comb"
schedule = "static"
max_imbalance = 2.9
rationale = "degenerate comb"

[[serve_guardband]]
case = "unique-jobs"
clients = 4
reference_jobs_per_s = 1000.0
guardband = 0.5
min_dedupe_hit_rate = 0.0
rationale = "test floor 500.0"

[[serve_guardband]]
case = "dedupe-storm"
clients = 4
reference_jobs_per_s = 2000.0
guardband = 0.5
min_dedupe_hit_rate = 0.5
rationale = "test floor 1000.0, storm must share work"

[[serve_smoke_floor]]
case = "unique-jobs"
min_jobs_per_s = 10.0
rationale = "catastrophic only"

[[serve_smoke_floor]]
case = "dedupe-storm"
min_jobs_per_s = 10.0
rationale = "catastrophic only"
"#,
        )
        .expect("test policy parses")
    }

    fn krec(kernel: &str, simd: bool, gflops: f64) -> KernelRecord {
        KernelRecord {
            kernel: kernel.into(),
            n: 64,
            threads: 1,
            simd,
            median_s: 1e-3,
            min_s: 9e-4,
            gflops,
        }
    }

    fn srec(schedule: &str, imbalance: f64) -> SchedRecord {
        SchedRecord {
            case: "resonance-comb".into(),
            schedule: schedule.into(),
            ranks: 4,
            units: 64,
            wall_s: 0.5,
            imbalance,
            reissued: 0,
        }
    }

    fn ivrec(schedule: &str, wall_s: f64) -> SchedRecord {
        SchedRecord {
            case: "iv-multibias".into(),
            schedule: schedule.into(),
            ranks: 4,
            units: 72,
            wall_s,
            imbalance: 1.1,
            reissued: 0,
        }
    }

    #[test]
    fn min_speedup_floor_requires_and_compares_the_static_partner() {
        let policy = test_policy();
        // 2.0× faster than the static partner — clears the 1.5× floor.
        let pair = vec![ivrec("static", 1.0), ivrec("dynamic", 0.5)];
        assert!(check_committed_sched(&policy, &pair).is_clean());
        // 1.25× is under the floor.
        let slow = vec![ivrec("static", 1.0), ivrec("dynamic", 0.8)];
        let report = check_committed_sched(&policy, &slow);
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(
            report.failures[0].contains("stopped paying for itself"),
            "{:?}",
            report.failures
        );
        // A static partner at a different rank count does not satisfy the
        // comparison — the floor is per (case, ranks).
        let mut other_ranks = ivrec("static", 1.0);
        other_ranks.ranks = 8;
        let report = check_committed_sched(&policy, &[other_ranks, ivrec("dynamic", 0.5)]);
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(
            report.failures[0].contains("no static record"),
            "{:?}",
            report.failures
        );
    }

    /// The acceptance criterion for the gate: a committed record
    /// hand-degraded below its guardband floor must fail, and restoring
    /// it must pass again.
    #[test]
    fn hand_degraded_committed_record_fails_and_reverted_passes() {
        let policy = test_policy();
        let healthy = vec![krec("gemm", false, 9.5), krec("lu", false, 4.5)];
        assert!(check_committed_kernels(&policy, &healthy).is_clean());

        let mut degraded = healthy.clone();
        degraded[0].gflops = 7.9; // just below the 8.0 floor
        let report = check_committed_kernels(&policy, &degraded);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("guardband floor 8.000"));
        assert!(report.failures[0].contains("gemm/n64/t1/simd=false"));

        degraded[0].gflops = healthy[0].gflops; // revert — green again
        assert!(check_committed_kernels(&policy, &degraded).is_clean());
    }

    #[test]
    fn committed_record_without_a_guardband_entry_fails() {
        let policy = test_policy();
        let report = check_committed_kernels(&policy, &[krec("gemm", true, 50.0)]);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("no kernel_guardband"));
    }

    #[test]
    fn non_finite_committed_measurements_fail() {
        let policy = test_policy();
        for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            let report = check_committed_kernels(&policy, &[krec("gemm", false, bad)]);
            assert_eq!(report.failures.len(), 1, "gflops {bad} must fail");
            assert!(report.failures[0].contains("non-finite or non-positive"));
        }
        let mut r = krec("gemm", false, 9.0);
        r.median_s = f64::NAN;
        assert!(!check_committed_kernels(&policy, &[r]).is_clean());
    }

    #[test]
    fn empty_committed_baselines_fail() {
        let policy = test_policy();
        assert!(!check_committed_kernels(&policy, &[]).is_clean());
        assert!(!check_committed_sched(&policy, &[]).is_clean());
    }

    #[test]
    fn sched_imbalance_past_its_ceiling_fails() {
        let policy = test_policy();
        assert!(check_committed_sched(&policy, &[srec("dynamic", 1.4)]).is_clean());
        let report = check_committed_sched(&policy, &[srec("dynamic", 1.6)]);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("exceeds the guardband ceiling"));
        // No guardband for the static schedule in the test policy.
        assert!(!check_committed_sched(&policy, &[srec("static", 1.0)]).is_clean());
    }

    #[test]
    fn smoke_requires_every_kernel_on_the_current_leg() {
        let policy = test_policy();
        let all = vec![
            krec("gemm", false, 0.2),
            krec("lu", false, 0.2),
            krec("selinv", false, 0.2),
        ];
        assert!(check_smoke_kernels(&policy, &all, false).is_clean());

        // lu missing on the leg: the missing kernel is named.
        let no_lu = vec![krec("gemm", false, 0.2), krec("selinv", false, 0.2)];
        let report = check_smoke_kernels(&policy, &no_lu, false);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("no fresh lu smoke record"));

        // Records exist but for the *other* leg: all three kernels are missing.
        let report = check_smoke_kernels(&policy, &all, true);
        assert_eq!(report.failures.len(), 3);
    }

    #[test]
    fn smoke_floor_catches_catastrophic_kernel_regression() {
        let policy = test_policy();
        let slow = vec![
            krec("gemm", false, 0.01),
            krec("lu", false, 0.2),
            krec("selinv", false, 0.2),
        ];
        let report = check_smoke_kernels(&policy, &slow, false);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("catastrophic floor"));
    }

    #[test]
    fn smoke_sched_requires_both_schedules_and_honors_ceilings() {
        let policy = test_policy();
        let both = vec![srec("dynamic", 1.2), srec("static", 2.5)];
        assert!(check_smoke_sched(&policy, &both).is_clean());

        let report = check_smoke_sched(&policy, &[srec("dynamic", 1.2)]);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("no fresh static smoke record"));

        let report = check_smoke_sched(&policy, &[srec("dynamic", 2.0), srec("static", 2.5)]);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("catastrophic ceiling"));
    }

    fn vrec(case: &str, jobs_per_s: f64, dedupe_hit_rate: f64) -> ServeRecord {
        ServeRecord {
            case: case.into(),
            clients: 4,
            jobs: 256,
            jobs_per_s,
            p50_ms: 0.2,
            p99_ms: 1.5,
            dedupe_hit_rate,
        }
    }

    #[test]
    fn serve_throughput_below_its_floor_fails_and_reverted_passes() {
        let policy = test_policy();
        let healthy = vec![
            vrec("unique-jobs", 900.0, 0.0),
            vrec("dedupe-storm", 1800.0, 0.9),
        ];
        assert!(check_committed_serve(&policy, &healthy).is_clean());

        let mut degraded = healthy.clone();
        degraded[0].jobs_per_s = 499.0; // just below the 500.0 floor
        let report = check_committed_serve(&policy, &degraded);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("guardband floor 500.000"));
        assert!(report.failures[0].contains("unique-jobs/c4"));

        degraded[0].jobs_per_s = healthy[0].jobs_per_s; // revert — green again
        assert!(check_committed_serve(&policy, &degraded).is_clean());
    }

    #[test]
    fn serve_dedupe_collapse_and_missing_guardband_fail() {
        let policy = test_policy();
        // The storm stopped deduping: throughput fine, hit rate floored.
        let report = check_committed_serve(&policy, &[vrec("dedupe-storm", 1800.0, 0.1)]);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("dedupe hit rate"));
        // No guardband entry for an 8-client record in the test policy.
        let mut r = vrec("unique-jobs", 900.0, 0.0);
        r.clients = 8;
        let report = check_committed_serve(&policy, &[r]);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("no serve_guardband"));
        // Empty committed baseline fails outright.
        assert!(!check_committed_serve(&policy, &[]).is_clean());
        // Non-finite measurements fail before any guardband lookup.
        assert!(!check_committed_serve(&policy, &[vrec("unique-jobs", f64::NAN, 0.0)]).is_clean());
        assert!(!check_committed_serve(&policy, &[vrec("unique-jobs", 900.0, 1.5)]).is_clean());
    }

    #[test]
    fn smoke_serve_requires_both_cases_and_honors_floors() {
        let policy = test_policy();
        let both = vec![
            vrec("unique-jobs", 50.0, 0.0),
            vrec("dedupe-storm", 80.0, 0.9),
        ];
        assert!(check_smoke_serve(&policy, &both).is_clean());

        let report = check_smoke_serve(&policy, &[vrec("unique-jobs", 50.0, 0.0)]);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("no fresh dedupe-storm smoke record"));

        let slow = vec![
            vrec("unique-jobs", 1.0, 0.0),
            vrec("dedupe-storm", 80.0, 0.9),
        ];
        let report = check_smoke_serve(&policy, &slow);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("catastrophic floor"));
    }

    /// The shipped policy must gate the shipped baselines: the committed
    /// `BENCH_*.json` pass as-is, and degrading any one committed kernel
    /// record below its guardband floor trips the gate (in memory — the
    /// files are never touched).
    #[test]
    fn shipped_policy_gates_the_shipped_baselines() {
        let policy = TolerancePolicy::load_default().expect("shipped TOLERANCES.toml loads");
        let kernels =
            kernel_json::read_records(&kernel_json::default_path()).expect("committed kernels");
        let sched = sched_json::read_records(&sched_json::default_path()).expect("committed sched");
        let kreport = check_committed_kernels(&policy, &kernels);
        assert!(
            kreport.is_clean(),
            "shipped kernel baseline violates its own policy: {:?}",
            kreport.failures
        );
        let sreport = check_committed_sched(&policy, &sched);
        assert!(
            sreport.is_clean(),
            "shipped sched baseline violates its own policy: {:?}",
            sreport.failures
        );
        let serve = serve_json::read_records(&serve_json::default_path()).expect("committed serve");
        let vreport = check_committed_serve(&policy, &serve);
        assert!(
            vreport.is_clean(),
            "shipped serve baseline violates its own policy: {:?}",
            vreport.failures
        );

        let mut degraded = kernels.clone();
        let g = policy
            .kernel_guardband(&degraded[0].kernel, degraded[0].simd)
            .expect("every committed record has a guardband");
        degraded[0].gflops = g.reference_gflops * (1.0 - g.guardband) * 0.99;
        assert!(
            !check_committed_kernels(&policy, &degraded).is_clean(),
            "degrading a committed record below its floor must trip the gate"
        );
    }
}
