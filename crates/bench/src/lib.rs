//! # omen-bench — evaluation harness
//!
//! One binary per table/figure of the reconstructed evaluation (see
//! DESIGN.md §4 and EXPERIMENTS.md). Each binary regenerates the rows or
//! series the corresponding experiment reports:
//!
//! | target | experiment |
//! |---|---|
//! | `fig1_bands` | bulk bandstructure validation (Si, GaAs) |
//! | `fig2_wire_bands` | nanowire subbands / gap vs cross-section |
//! | `tab1_wf_vs_rgf` | WF ≡ RGF ≡ dense equivalence |
//! | `fig3_idvg` | self-consistent Id–Vg of a GAA nanowire nMOSFET |
//! | `fig4_tfet` | GNR TFET transfer curve |
//! | `tab2_flops` | measured flops/energy-point, RGF vs WF |
//! | `fig5_solver_scaling` | SplitSolve strong scaling vs ranks |
//! | `fig6_multilevel` | efficiency of the parallel levels |
//! | `fig7_petascale` | sustained-PFlop/s projection on the Jaguar model |
//! | `tab3_timetosol` | time-to-solution per bias point, engine comparison |
//! | `fig8_ballistic_limits` | conductance quantization & analytic barrier |
//! | `fig9_complex_bands` | evanescent decay constants (extension) |
//! | `fig10_alloy` | SiGe random alloy vs virtual crystal (extension) |
//! | `fig11_utb_kpoints` | transverse momentum integration (extension) |
//! | `fig12_adaptive_grid` | adaptive vs uniform energy grids (extension) |
//! | `fig13_phonon` | phonon dispersion & thermal conductance (extension) |
//! | `fig14_idvd` | output characteristic Id–V_DS (extension) |
//! | `ablations` | SCF predictor / passivation / η / strain studies |
//!
//! Microbenches for the dense/transport kernels live in `benches/`; they
//! and `tab2_flops --json` persist machine-readable throughput records to
//! the repo-root `BENCH_kernels.json` baseline via [`kernel_json`].

pub mod gate;
pub mod kernel_json;
pub mod sched_json;
pub mod serve_json;

use std::time::Instant;

/// Times `f` repeatedly, reporting `(median, min)` seconds per iteration
/// over `samples` timed batches. One warm-up call sizes the batch so each
/// sample covers roughly `target_s` seconds (at least one iteration).
pub fn sample_secs<T>(samples: usize, target_s: f64, mut f: impl FnMut() -> T) -> (f64, f64) {
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((target_s / once).ceil() as usize).clamp(1, 10_000);
    let samples = samples.max(1);
    let mut per_iter = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        per_iter.push(t.elapsed().as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(f64::total_cmp);
    (per_iter[samples / 2], per_iter[0])
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let head: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
        .collect();
    println!("{}", head.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Formats a float in engineering style.
pub fn eng(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if !(1e-3..1e7).contains(&a) {
        format!("{v:.3e}")
    } else if a < 1.0 {
        format!("{v:.5}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        print_table("t", &["a", "bb"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn timer_returns_result() {
        let (v, s) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }

    #[test]
    fn eng_formats() {
        assert_eq!(eng(0.0), "0");
        assert!(eng(1e-9).contains('e'));
        assert!(!eng(12.5).contains('e'));
    }
}
