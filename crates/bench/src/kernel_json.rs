//! `BENCH_kernels.json` — the machine-readable kernel benchmark baseline.
//!
//! The bench harness used to print human tables only; this module gives it
//! a trajectory file: every kernel benchmark run (`benches/kernels.rs`,
//! `tab2_flops --json`) merges its records into one JSON document at the
//! repository root, so successive PRs can compare throughput against the
//! committed baseline instead of against folklore.
//!
//! ## Schema (`omen-bench-kernels-v1`)
//!
//! ```json
//! {
//!   "schema": "omen-bench-kernels-v1",
//!   "records": [
//!     {"kernel": "gemm", "n": 512, "threads": 4, "simd": true,
//!      "median_s": 1.234560e0, "min_s": 1.200000e0, "gflops": 0.870}
//!   ]
//! }
//! ```
//!
//! One record per `(kernel, n, threads, simd)` key — `n` is the square
//! matrix edge (or slab-block size for transport kernels), `simd` says
//! which microkernel dispatch path the process ran
//! (`omen_linalg::threads::simd_path`: `true` = AVX2+FMA, `false` =
//! scalar reference), `median_s`/`min_s` are seconds per iteration over
//! the sample set, `gflops` is real double-precision Gflop/s under the
//! Gordon-Bell convention (counted, not assumed, for the transport
//! records). Records written before the `simd` field existed parse as
//! `simd: false` — they were all measured on the scalar kernel. Merging
//! replaces records with the same key and keeps the rest, so partial
//! reruns (e.g. one per `OMEN_SIMD` leg) never lose history. The parser
//! is hand-rolled for exactly this schema (the container bakes in no
//! serde), and the writer emits one record per line for reviewable diffs.

use std::path::{Path, PathBuf};

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Kernel name (`gemm`, `lu`, `rgf_energy_point`, ...).
    pub kernel: String,
    /// Problem edge: square matrix size or slab-block size.
    pub n: usize,
    /// Kernel threads the measurement ran with.
    pub threads: usize,
    /// True when the process dispatched the AVX2+FMA microkernel, false
    /// for the scalar reference path (and for pre-`simd`-field records).
    pub simd: bool,
    /// Median seconds per iteration.
    pub median_s: f64,
    /// Minimum seconds per iteration.
    pub min_s: f64,
    /// Real double-precision Gflop/s (Gordon-Bell convention).
    pub gflops: f64,
}

/// Identifier of the only document layout this module reads and writes.
pub const SCHEMA: &str = "omen-bench-kernels-v1";

/// Default baseline location: `BENCH_kernels.json` at the workspace root.
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json")
}

fn fmt_record(r: &KernelRecord) -> String {
    format!(
        "    {{\"kernel\": \"{}\", \"n\": {}, \"threads\": {}, \"simd\": {}, \"median_s\": {:.6e}, \"min_s\": {:.6e}, \"gflops\": {:.3}}}",
        r.kernel, r.n, r.threads, r.simd, r.median_s, r.min_s, r.gflops
    )
}

/// Serializes `records` as a full document.
pub fn to_json(records: &[KernelRecord]) -> String {
    let body: Vec<String> = records.iter().map(fmt_record).collect();
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"records\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

/// Extracts the raw text of `"key": <value>` from one record object.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let at = obj.find(&tag)? + tag.len();
    let rest = obj[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn parse_record(obj: &str) -> Option<KernelRecord> {
    let kernel = field(obj, "kernel")?.trim_matches('"').to_string();
    Some(KernelRecord {
        kernel,
        n: field(obj, "n")?.parse().ok()?,
        threads: field(obj, "threads")?.parse().ok()?,
        // Absent in pre-SIMD baselines, which were all scalar measurements.
        simd: field(obj, "simd").is_some_and(|v| v == "true"),
        median_s: field(obj, "median_s")?.parse().ok()?,
        min_s: field(obj, "min_s")?.parse().ok()?,
        gflops: field(obj, "gflops")?.parse().ok()?,
    })
}

/// Parses a document produced by [`to_json`]. Returns `None` when the text
/// is not an `omen-bench-kernels-v1` document; records that fail to parse
/// individually are skipped.
pub fn from_json(text: &str) -> Option<Vec<KernelRecord>> {
    if !text.contains(SCHEMA) {
        return None;
    }
    let arr_start = text.find("\"records\"")?;
    let arr = &text[text[arr_start..].find('[')? + arr_start + 1..];
    let arr = &arr[..arr.rfind(']')?];
    let mut records = Vec::new();
    let mut rest = arr;
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        if let Some(r) = parse_record(&rest[open..open + close + 1]) {
            records.push(r);
        }
        rest = &rest[open + close + 1..];
    }
    Some(records)
}

/// Reads the baseline at `path`; empty when absent or unreadable.
pub fn read_records(path: &Path) -> Vec<KernelRecord> {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|t| from_json(&t))
        .unwrap_or_default()
}

/// Merges `fresh` into the baseline at `path`: records with a matching
/// `(kernel, n, threads, simd)` key are replaced, everything else is
/// kept, and the result is written back sorted by that key — so the
/// scalar and SIMD legs of a benchmark run coexist as separate rows.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be written.
pub fn merge_records(path: &Path, fresh: &[KernelRecord]) -> std::io::Result<()> {
    let mut all = read_records(path);
    for r in fresh {
        all.retain(|e| {
            (e.kernel.as_str(), e.n, e.threads, e.simd)
                != (r.kernel.as_str(), r.n, r.threads, r.simd)
        });
        all.push(r.clone());
    }
    all.sort_by(|a, b| {
        (a.kernel.as_str(), a.n, a.threads, a.simd).cmp(&(
            b.kernel.as_str(),
            b.n,
            b.threads,
            b.simd,
        ))
    });
    std::fs::write(path, to_json(&all))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kernel: &str, n: usize, threads: usize, g: f64) -> KernelRecord {
        KernelRecord {
            kernel: kernel.into(),
            n,
            threads,
            simd: false,
            median_s: 0.5 * n as f64 * 1e-6,
            min_s: 0.4 * n as f64 * 1e-6,
            gflops: g,
        }
    }

    #[test]
    fn roundtrip() {
        let records = vec![rec("gemm", 512, 4, 1.25), rec("lu", 128, 1, 0.333)];
        let parsed = from_json(&to_json(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn roundtrip_preserves_simd_flag() {
        let mut a = rec("gemm", 512, 1, 9.0);
        a.simd = true;
        let b = rec("gemm", 512, 1, 7.5);
        let parsed = from_json(&to_json(&[a.clone(), b.clone()])).unwrap();
        assert_eq!(parsed, vec![a, b]);
    }

    #[test]
    fn pre_simd_records_parse_as_scalar() {
        let legacy = format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"records\": [\n    \
             {{\"kernel\": \"gemm\", \"n\": 64, \"threads\": 1, \
             \"median_s\": 1.0e-3, \"min_s\": 9.0e-4, \"gflops\": 2.0}}\n  ]\n}}\n"
        );
        let parsed = from_json(&legacy).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(!parsed[0].simd);
    }

    #[test]
    fn merge_keeps_scalar_and_simd_rows_separate() {
        let dir = std::env::temp_dir().join("omen_bench_kernel_json_simd_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merge_simd.json");
        let _ = std::fs::remove_file(&path);
        let scalar = rec("gemm", 512, 1, 7.5);
        let mut simd = rec("gemm", 512, 1, 20.0);
        simd.simd = true;
        merge_records(&path, std::slice::from_ref(&scalar)).unwrap();
        merge_records(&path, std::slice::from_ref(&simd)).unwrap();
        let all = read_records(&path);
        assert_eq!(all.len(), 2, "SIMD leg must not clobber the scalar row");
        assert_eq!(all[0], scalar);
        assert_eq!(all[1], simd);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_schema_rejected() {
        assert!(from_json("{\"schema\": \"something-else\"}").is_none());
        assert!(from_json("").is_none());
    }

    #[test]
    fn merge_replaces_matching_keys_and_sorts() {
        let dir = std::env::temp_dir().join("omen_bench_kernel_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merge.json");
        let _ = std::fs::remove_file(&path);
        merge_records(&path, &[rec("lu", 64, 1, 1.0), rec("gemm", 512, 4, 2.0)]).unwrap();
        merge_records(&path, &[rec("gemm", 512, 4, 3.0), rec("gemm", 512, 1, 1.5)]).unwrap();
        let all = read_records(&path);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].kernel, "gemm");
        assert_eq!((all[0].n, all[0].threads), (512, 1));
        let updated = all.iter().find(|r| r.threads == 4).unwrap();
        assert_eq!(updated.gflops, 3.0);
        assert_eq!(all[2].kernel, "lu");
        let _ = std::fs::remove_file(&path);
    }
}
