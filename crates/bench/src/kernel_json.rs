//! `BENCH_kernels.json` — the machine-readable kernel benchmark baseline.
//!
//! The bench harness used to print human tables only; this module gives it
//! a trajectory file: every kernel benchmark run (`benches/kernels.rs`,
//! `tab2_flops --json`) merges its records into one JSON document at the
//! repository root, so successive PRs can compare throughput against the
//! committed baseline instead of against folklore.
//!
//! ## Schema (`omen-bench-kernels-v1`)
//!
//! ```json
//! {
//!   "schema": "omen-bench-kernels-v1",
//!   "records": [
//!     {"kernel": "gemm", "n": 512, "threads": 4, "simd": true,
//!      "median_s": 1.234560e0, "min_s": 1.200000e0, "gflops": 0.870}
//!   ]
//! }
//! ```
//!
//! One record per `(kernel, n, threads, simd)` key — `n` is the square
//! matrix edge (or slab-block size for transport kernels), `simd` says
//! which microkernel dispatch path the process ran
//! (`omen_linalg::threads::simd_path`: `true` = AVX2+FMA, `false` =
//! scalar reference), `median_s`/`min_s` are seconds per iteration over
//! the sample set, `gflops` is real double-precision Gflop/s under the
//! Gordon-Bell convention (counted, not assumed, for the transport
//! records). Records written before the `simd` field existed parse as
//! `simd: false` — they were all measured on the scalar kernel. Merging
//! replaces records with the same key and keeps the rest, so partial
//! reruns (e.g. one per `OMEN_SIMD` leg) never lose history. The parser
//! is hand-rolled for exactly this schema (the container bakes in no
//! serde), and the writer emits one record per line for reviewable diffs.

use omen_num::{OmenError, OmenResult};
use std::path::{Path, PathBuf};

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Kernel name (`gemm`, `lu`, `rgf_energy_point`, ...).
    pub kernel: String,
    /// Problem edge: square matrix size or slab-block size.
    pub n: usize,
    /// Kernel threads the measurement ran with.
    pub threads: usize,
    /// True when the process dispatched the AVX2+FMA microkernel, false
    /// for the scalar reference path (and for pre-`simd`-field records).
    pub simd: bool,
    /// Median seconds per iteration.
    pub median_s: f64,
    /// Minimum seconds per iteration.
    pub min_s: f64,
    /// Real double-precision Gflop/s (Gordon-Bell convention).
    pub gflops: f64,
}

/// Identifier of the only document layout this module reads and writes.
pub const SCHEMA: &str = "omen-bench-kernels-v1";

/// Default baseline location: `BENCH_kernels.json` at the workspace root.
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json")
}

fn fmt_record(r: &KernelRecord) -> String {
    format!(
        "    {{\"kernel\": \"{}\", \"n\": {}, \"threads\": {}, \"simd\": {}, \"median_s\": {:.6e}, \"min_s\": {:.6e}, \"gflops\": {:.3}}}",
        r.kernel, r.n, r.threads, r.simd, r.median_s, r.min_s, r.gflops
    )
}

/// Serializes `records` as a full document.
pub fn to_json(records: &[KernelRecord]) -> String {
    let body: Vec<String> = records.iter().map(fmt_record).collect();
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"records\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

/// Extracts the raw text of `"key": <value>` from one record object.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let at = obj.find(&tag)? + tag.len();
    let rest = obj[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn req<'a>(obj: &'a str, key: &str) -> Result<&'a str, String> {
    field(obj, key).ok_or_else(|| format!("missing field {key:?}"))
}

fn num<T: std::str::FromStr>(obj: &str, key: &str) -> Result<T, String> {
    let raw = req(obj, key)?;
    raw.parse()
        .map_err(|_| format!("unparsable field {key:?}: {raw:?}"))
}

fn parse_record(obj: &str) -> Result<KernelRecord, String> {
    Ok(KernelRecord {
        kernel: req(obj, "kernel")?.trim_matches('"').to_string(),
        n: num(obj, "n")?,
        threads: num(obj, "threads")?,
        // Absent in pre-SIMD baselines, which were all scalar measurements.
        simd: field(obj, "simd").is_some_and(|v| v == "true"),
        median_s: num(obj, "median_s")?,
        min_s: num(obj, "min_s")?,
        gflops: num(obj, "gflops")?,
    })
}

fn berr(source: &str, detail: impl Into<String>) -> OmenError {
    OmenError::InvalidBaseline {
        path: source.to_string(),
        detail: detail.into(),
    }
}

/// Parses a document produced by [`to_json`]. `source` names the document
/// in error messages (a path, or a logical label in tests).
///
/// # Errors
///
/// Returns [`OmenError::InvalidBaseline`] when the schema tag is missing
/// or not `omen-bench-kernels-v1` (the error names the found schema), the
/// records array is absent, or any record fails to parse (the error names
/// the record index and field) — a corrupt baseline is never silently
/// read as a smaller one.
pub fn from_json(source: &str, text: &str) -> OmenResult<Vec<KernelRecord>> {
    let schema = field(text, "schema")
        .map(|s| s.trim_matches('"'))
        .ok_or_else(|| berr(source, "missing schema tag"))?;
    if schema != SCHEMA {
        return Err(berr(
            source,
            format!("schema {schema:?} (expected {SCHEMA:?})"),
        ));
    }
    let arr_start = text
        .find("\"records\"")
        .ok_or_else(|| berr(source, "missing records array"))?;
    let open = text[arr_start..]
        .find('[')
        .ok_or_else(|| berr(source, "missing records array"))?;
    let arr = &text[arr_start + open + 1..];
    let arr = &arr[..arr
        .rfind(']')
        .ok_or_else(|| berr(source, "unterminated records array"))?];
    let mut records = Vec::new();
    let mut rest = arr;
    while let Some(obj_open) = rest.find('{') {
        let Some(close) = rest[obj_open..].find('}') else {
            return Err(berr(
                source,
                format!("unterminated record object after index {}", records.len()),
            ));
        };
        let obj = &rest[obj_open..obj_open + close + 1];
        let r = parse_record(obj)
            .map_err(|detail| berr(source, format!("record {}: {detail}", records.len())))?;
        records.push(r);
        rest = &rest[obj_open + close + 1..];
    }
    Ok(records)
}

/// Reads the baseline at `path`. A file that does not exist yet is an
/// empty baseline (first run); anything else that fails is an error.
///
/// # Errors
///
/// Returns [`OmenError::InvalidBaseline`] when the file exists but cannot
/// be read, or fails any [`from_json`] validation.
pub fn read_records(path: &Path) -> OmenResult<Vec<KernelRecord>> {
    let source = path.display().to_string();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(berr(&source, format!("cannot read baseline: {e}"))),
    };
    from_json(&source, &text)
}

/// Merges `fresh` into the baseline at `path`: records with a matching
/// `(kernel, n, threads, simd)` key are replaced, everything else is
/// kept, and the result is written back sorted by that key — so the
/// scalar and SIMD legs of a benchmark run coexist as separate rows.
/// Replace-by-key plus the total sort make the merge idempotent: merging
/// the same records twice, in any input order, yields byte-identical
/// documents.
///
/// # Errors
///
/// Returns [`OmenError::InvalidBaseline`] when the existing baseline is
/// unreadable or fails validation (it is left untouched rather than
/// clobbered), or when the merged document cannot be written.
pub fn merge_records(path: &Path, fresh: &[KernelRecord]) -> OmenResult<()> {
    let mut all = read_records(path)?;
    for r in fresh {
        all.retain(|e| {
            (e.kernel.as_str(), e.n, e.threads, e.simd)
                != (r.kernel.as_str(), r.n, r.threads, r.simd)
        });
        all.push(r.clone());
    }
    all.sort_by(|a, b| {
        (a.kernel.as_str(), a.n, a.threads, a.simd).cmp(&(
            b.kernel.as_str(),
            b.n,
            b.threads,
            b.simd,
        ))
    });
    std::fs::write(path, to_json(&all)).map_err(|e| {
        berr(
            &path.display().to_string(),
            format!("cannot write baseline: {e}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kernel: &str, n: usize, threads: usize, g: f64) -> KernelRecord {
        KernelRecord {
            kernel: kernel.into(),
            n,
            threads,
            simd: false,
            median_s: 0.5 * n as f64 * 1e-6,
            min_s: 0.4 * n as f64 * 1e-6,
            gflops: g,
        }
    }

    #[test]
    fn roundtrip() {
        let records = vec![rec("gemm", 512, 4, 1.25), rec("lu", 128, 1, 0.333)];
        let parsed = from_json("test", &to_json(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn roundtrip_preserves_simd_flag() {
        let mut a = rec("gemm", 512, 1, 9.0);
        a.simd = true;
        let b = rec("gemm", 512, 1, 7.5);
        let parsed = from_json("test", &to_json(&[a.clone(), b.clone()])).unwrap();
        assert_eq!(parsed, vec![a, b]);
    }

    #[test]
    fn pre_simd_records_parse_as_scalar() {
        let legacy = format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"records\": [\n    \
             {{\"kernel\": \"gemm\", \"n\": 64, \"threads\": 1, \
             \"median_s\": 1.0e-3, \"min_s\": 9.0e-4, \"gflops\": 2.0}}\n  ]\n}}\n"
        );
        let parsed = from_json("test", &legacy).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(!parsed[0].simd);
    }

    #[test]
    fn merge_keeps_scalar_and_simd_rows_separate() {
        let dir = std::env::temp_dir().join("omen_bench_kernel_json_simd_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merge_simd.json");
        let _ = std::fs::remove_file(&path);
        let scalar = rec("gemm", 512, 1, 7.5);
        let mut simd = rec("gemm", 512, 1, 20.0);
        simd.simd = true;
        merge_records(&path, std::slice::from_ref(&scalar)).unwrap();
        merge_records(&path, std::slice::from_ref(&simd)).unwrap();
        let all = read_records(&path).unwrap();
        assert_eq!(all.len(), 2, "SIMD leg must not clobber the scalar row");
        assert_eq!(all[0], scalar);
        assert_eq!(all[1], simd);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_schema_is_a_clear_error() {
        match from_json("doc", "{\"schema\": \"omen-bench-kernels-v9\"}") {
            Err(OmenError::InvalidBaseline { path, detail }) => {
                assert_eq!(path, "doc");
                assert!(detail.contains("omen-bench-kernels-v9"), "{detail}");
                assert!(detail.contains(SCHEMA), "{detail}");
            }
            other => panic!("expected InvalidBaseline, got {other:?}"),
        }
        match from_json("doc", "") {
            Err(OmenError::InvalidBaseline { detail, .. }) => {
                assert!(detail.contains("missing schema"), "{detail}");
            }
            other => panic!("expected InvalidBaseline, got {other:?}"),
        }
    }

    #[test]
    fn malformed_records_are_errors_not_omissions() {
        let doc = format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"records\": [\n    \
             {{\"kernel\": \"gemm\", \"n\": 64, \"threads\": 1, \"simd\": false, \
             \"median_s\": 1.0e-3, \"min_s\": 9.0e-4, \"gflops\": 2.0}},\n    \
             {{\"kernel\": \"lu\", \"n\": \"wat\", \"threads\": 1, \"simd\": false, \
             \"median_s\": 1.0e-3, \"min_s\": 9.0e-4, \"gflops\": 2.0}}\n  ]\n}}\n"
        );
        match from_json("doc", &doc) {
            Err(OmenError::InvalidBaseline { detail, .. }) => {
                assert!(detail.contains("record 1"), "{detail}");
                assert!(detail.contains("\"n\""), "{detail}");
            }
            other => panic!("expected InvalidBaseline, got {other:?}"),
        }
    }

    #[test]
    fn merge_refuses_to_clobber_an_incompatible_baseline() {
        let dir = std::env::temp_dir().join("omen_bench_kernel_json_clobber_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("incompatible.json");
        std::fs::write(
            &path,
            "{\"schema\": \"omen-bench-kernels-v9\", \"records\": []}",
        )
        .unwrap();
        let before = std::fs::read_to_string(&path).unwrap();
        let err = merge_records(&path, &[rec("gemm", 64, 1, 1.0)]).unwrap_err();
        assert!(matches!(err, OmenError::InvalidBaseline { .. }), "{err}");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            before,
            "a failed merge must leave the existing file untouched"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_is_idempotent_and_order_independent() {
        let dir = std::env::temp_dir().join("omen_bench_kernel_json_idem_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idem.json");
        let _ = std::fs::remove_file(&path);
        let mut simd = rec("gemm", 128, 2, 12.0);
        simd.simd = true;
        let records = vec![rec("lu", 64, 1, 1.0), rec("gemm", 512, 4, 2.0), simd];
        merge_records(&path, &records).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        // Re-running the same bench must not duplicate or reorder anything.
        merge_records(&path, &records).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), first);
        // Nor may the input order matter.
        let mut reversed = records.clone();
        reversed.reverse();
        merge_records(&path, &reversed).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), first);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_replaces_matching_keys_and_sorts() {
        let dir = std::env::temp_dir().join("omen_bench_kernel_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merge.json");
        let _ = std::fs::remove_file(&path);
        merge_records(&path, &[rec("lu", 64, 1, 1.0), rec("gemm", 512, 4, 2.0)]).unwrap();
        merge_records(&path, &[rec("gemm", 512, 4, 3.0), rec("gemm", 512, 1, 1.5)]).unwrap();
        let all = read_records(&path).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].kernel, "gemm");
        assert_eq!((all[0].n, all[0].threads), (512, 1));
        let updated = all.iter().find(|r| r.threads == 4).unwrap();
        assert_eq!(updated.gflops, 3.0);
        assert_eq!(all[2].kernel, "lu");
        let _ = std::fs::remove_file(&path);
    }
}
