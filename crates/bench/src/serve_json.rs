//! `BENCH_serve.json` — the machine-readable service benchmark baseline.
//!
//! Records throughput and tail latency of the `omen-serve` daemon under
//! N concurrent clients hammering a loopback server with a synthetic
//! (instant) executor, so the numbers measure the service machinery —
//! framing, admission, dedupe, cache, fan-out — not the solver. Two
//! canonical cases: `unique-jobs` (every submission is a distinct
//! request; dedupe hit rate ~0) and `dedupe-storm` (all clients submit
//! the same request; everything after the first solve joins or hits the
//! cache). Successive PRs compare against the committed baseline
//! instead of against folklore.
//!
//! ## Schema (`omen-bench-serve-v1`)
//!
//! ```json
//! {
//!   "schema": "omen-bench-serve-v1",
//!   "records": [
//!     {"case": "dedupe-storm", "clients": 4, "jobs": 256,
//!      "jobs_per_s": 1.2e4, "p50_ms": 0.21, "p99_ms": 1.05,
//!      "dedupe_hit_rate": 0.996}
//!   ]
//! }
//! ```
//!
//! One record per `(case, clients)` pair. `dedupe_hit_rate` is the
//! fraction of accepted jobs served without starting a fresh solve
//! (joined in flight or replayed from cache). Merging replaces records
//! with the same key and keeps the rest; the parser is hand-rolled for
//! exactly this schema (the container bakes in no serde), and the
//! writer emits one record per line for reviewable diffs.

use omen_num::{OmenError, OmenResult};
use std::path::{Path, PathBuf};

/// One service measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRecord {
    /// Workload name (`unique-jobs`, `dedupe-storm`).
    pub case: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Jobs submitted across all clients.
    pub jobs: usize,
    /// Completed jobs per second (all clients together).
    pub jobs_per_s: f64,
    /// Median submit→done latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile submit→done latency (ms).
    pub p99_ms: f64,
    /// Fraction of jobs served without a fresh solve.
    pub dedupe_hit_rate: f64,
}

/// Identifier of the only document layout this module reads and writes.
pub const SCHEMA: &str = "omen-bench-serve-v1";

/// Default baseline location: `BENCH_serve.json` at the workspace root.
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
}

fn fmt_record(r: &ServeRecord) -> String {
    format!(
        "    {{\"case\": \"{}\", \"clients\": {}, \"jobs\": {}, \"jobs_per_s\": {:.4e}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"dedupe_hit_rate\": {:.4}}}",
        r.case, r.clients, r.jobs, r.jobs_per_s, r.p50_ms, r.p99_ms, r.dedupe_hit_rate
    )
}

/// Serializes `records` as a full document.
pub fn to_json(records: &[ServeRecord]) -> String {
    let body: Vec<String> = records.iter().map(fmt_record).collect();
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"records\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

/// Extracts the raw text of `"key": <value>` from one record object.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let at = obj.find(&tag)? + tag.len();
    let rest = obj[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn req<'a>(obj: &'a str, key: &str) -> Result<&'a str, String> {
    field(obj, key).ok_or_else(|| format!("missing field {key:?}"))
}

fn num<T: std::str::FromStr>(obj: &str, key: &str) -> Result<T, String> {
    let raw = req(obj, key)?;
    raw.parse()
        .map_err(|_| format!("unparsable field {key:?}: {raw:?}"))
}

fn parse_record(obj: &str) -> Result<ServeRecord, String> {
    Ok(ServeRecord {
        case: req(obj, "case")?.trim_matches('"').to_string(),
        clients: num(obj, "clients")?,
        jobs: num(obj, "jobs")?,
        jobs_per_s: num(obj, "jobs_per_s")?,
        p50_ms: num(obj, "p50_ms")?,
        p99_ms: num(obj, "p99_ms")?,
        dedupe_hit_rate: num(obj, "dedupe_hit_rate")?,
    })
}

fn berr(source: &str, detail: impl Into<String>) -> OmenError {
    OmenError::InvalidBaseline {
        path: source.to_string(),
        detail: detail.into(),
    }
}

/// Parses a document produced by [`to_json`]. `source` names the document
/// in error messages (a path, or a logical label in tests).
///
/// # Errors
///
/// Returns [`OmenError::InvalidBaseline`] when the schema tag is missing
/// or not `omen-bench-serve-v1` (the error names the found schema), the
/// records array is absent, or any record fails to parse (the error names
/// the record index and field) — a corrupt baseline is never silently
/// read as a smaller one.
pub fn from_json(source: &str, text: &str) -> OmenResult<Vec<ServeRecord>> {
    let schema = field(text, "schema")
        .map(|s| s.trim_matches('"'))
        .ok_or_else(|| berr(source, "missing schema tag"))?;
    if schema != SCHEMA {
        return Err(berr(
            source,
            format!("schema {schema:?} (expected {SCHEMA:?})"),
        ));
    }
    let arr_start = text
        .find("\"records\"")
        .ok_or_else(|| berr(source, "missing records array"))?;
    let open = text[arr_start..]
        .find('[')
        .ok_or_else(|| berr(source, "missing records array"))?;
    let arr = &text[arr_start + open + 1..];
    let arr = &arr[..arr
        .rfind(']')
        .ok_or_else(|| berr(source, "unterminated records array"))?];
    let mut records = Vec::new();
    let mut rest = arr;
    while let Some(obj_open) = rest.find('{') {
        let Some(close) = rest[obj_open..].find('}') else {
            return Err(berr(
                source,
                format!("unterminated record object after index {}", records.len()),
            ));
        };
        let obj = &rest[obj_open..obj_open + close + 1];
        let r = parse_record(obj)
            .map_err(|detail| berr(source, format!("record {}: {detail}", records.len())))?;
        records.push(r);
        rest = &rest[obj_open + close + 1..];
    }
    Ok(records)
}

/// Reads the baseline at `path`. A file that does not exist yet is an
/// empty baseline (first run); anything else that fails is an error.
///
/// # Errors
///
/// Returns [`OmenError::InvalidBaseline`] when the file exists but cannot
/// be read, or fails any [`from_json`] validation.
pub fn read_records(path: &Path) -> OmenResult<Vec<ServeRecord>> {
    let source = path.display().to_string();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(berr(&source, format!("cannot read baseline: {e}"))),
    };
    from_json(&source, &text)
}

/// Merges `fresh` into the baseline at `path`: records with a matching
/// `(case, clients)` key are replaced, everything else is kept, and the
/// result is written back sorted by that key. Replace-by-key plus the
/// total sort make the merge idempotent: merging the same records twice,
/// in any input order, yields byte-identical documents.
///
/// # Errors
///
/// Returns [`OmenError::InvalidBaseline`] when the existing baseline is
/// unreadable or fails validation (it is left untouched rather than
/// clobbered), or when the merged document cannot be written.
pub fn merge_records(path: &Path, fresh: &[ServeRecord]) -> OmenResult<()> {
    let mut all = read_records(path)?;
    for r in fresh {
        all.retain(|e| (e.case.as_str(), e.clients) != (r.case.as_str(), r.clients));
        all.push(r.clone());
    }
    all.sort_by(|a, b| (a.case.as_str(), a.clients).cmp(&(b.case.as_str(), b.clients)));
    std::fs::write(path, to_json(&all)).map_err(|e| {
        berr(
            &path.display().to_string(),
            format!("cannot write baseline: {e}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(case: &str, clients: usize, jps: f64) -> ServeRecord {
        ServeRecord {
            case: case.into(),
            clients,
            jobs: 256,
            jobs_per_s: jps,
            p50_ms: 0.2,
            p99_ms: 1.5,
            dedupe_hit_rate: 0.5,
        }
    }

    #[test]
    fn roundtrip() {
        let records = vec![rec("unique-jobs", 4, 9.5e3), rec("dedupe-storm", 4, 2.1e4)];
        let parsed = from_json("test", &to_json(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn wrong_schema_is_a_clear_error() {
        match from_json("doc", "{\"schema\": \"omen-bench-serve-v9\"}") {
            Err(OmenError::InvalidBaseline { path, detail }) => {
                assert_eq!(path, "doc");
                assert!(detail.contains("omen-bench-serve-v9"), "{detail}");
                assert!(detail.contains(SCHEMA), "{detail}");
            }
            other => panic!("expected InvalidBaseline, got {other:?}"),
        }
        assert!(matches!(
            from_json("doc", ""),
            Err(OmenError::InvalidBaseline { .. })
        ));
    }

    #[test]
    fn malformed_records_are_errors_not_omissions() {
        let doc = format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"records\": [\n    \
             {{\"case\": \"unique-jobs\", \"clients\": 4, \"jobs\": 256, \
             \"jobs_per_s\": \"broken\", \"p50_ms\": 0.2, \"p99_ms\": 1.5, \
             \"dedupe_hit_rate\": 0.0}}\n  ]\n}}\n"
        );
        match from_json("doc", &doc) {
            Err(OmenError::InvalidBaseline { detail, .. }) => {
                assert!(detail.contains("record 0"), "{detail}");
                assert!(detail.contains("\"jobs_per_s\""), "{detail}");
            }
            other => panic!("expected InvalidBaseline, got {other:?}"),
        }
    }

    #[test]
    fn merge_is_idempotent_and_order_independent() {
        let dir = std::env::temp_dir().join("omen_bench_serve_json_idem_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idem.json");
        let _ = std::fs::remove_file(&path);
        let records = vec![
            rec("unique-jobs", 4, 9.5e3),
            rec("dedupe-storm", 4, 2.1e4),
            rec("dedupe-storm", 8, 3.0e4),
        ];
        merge_records(&path, &records).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        merge_records(&path, &records).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), first);
        let mut reversed = records.clone();
        reversed.reverse();
        merge_records(&path, &reversed).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), first);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_refuses_to_clobber_an_incompatible_baseline() {
        let dir = std::env::temp_dir().join("omen_bench_serve_json_clobber_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("incompatible.json");
        std::fs::write(
            &path,
            "{\"schema\": \"omen-bench-serve-v9\", \"records\": []}",
        )
        .unwrap();
        let before = std::fs::read_to_string(&path).unwrap();
        let err = merge_records(&path, &[rec("unique-jobs", 4, 1.0e4)]).unwrap_err();
        assert!(matches!(err, OmenError::InvalidBaseline { .. }), "{err}");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            before,
            "a failed merge must leave the existing file untouched"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_replaces_matching_keys_and_sorts() {
        let dir = std::env::temp_dir().join("omen_bench_serve_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merge.json");
        let _ = std::fs::remove_file(&path);
        merge_records(&path, &[rec("unique-jobs", 4, 1.0e4)]).unwrap();
        merge_records(
            &path,
            &[rec("unique-jobs", 4, 1.5e4), rec("dedupe-storm", 4, 2.0e4)],
        )
        .unwrap();
        let all = read_records(&path).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].case, "dedupe-storm");
        assert_eq!(all[1].jobs_per_s, 1.5e4);
        let _ = std::fs::remove_file(&path);
    }
}
