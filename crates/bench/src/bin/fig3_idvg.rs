//! fig3_idvg — self-consistent transfer characteristic of a GAA nanowire
//! nMOSFET (the headline device-engineering result class).
//!
//! Regenerates the Id–Vg series: current vs gate voltage at fixed V_DS from
//! the full Schrödinger–Poisson loop, with subthreshold swing and on/off
//! extraction. Expected shape: exponential subthreshold region with
//! SS ≳ 60 mV/dec, turning over to a linear-ish on-state.
//!
//! The shipped configuration uses the single-band wire (interactive
//! runtime); pass `--full-band` for the sp3s* silicon version of the same
//! sweep (several minutes).

use omen_bench::{print_table, timed};
use omen_core::iv::{gate_sweep, on_off_ratio, subthreshold_swing};
use omen_core::{Engine, ScfOptions, Schedule, TransistorSpec};
use omen_num::linspace;
use omen_tb::Material;

fn main() {
    let full_band = std::env::args().any(|a| a == "--full-band");
    let (material, mu_source, vgs) = if full_band {
        (Material::SiSp3s, 1.75, linspace(-0.2, 0.5, 8))
    } else {
        (
            Material::SingleBand { t_mev: 1000 },
            -3.4,
            linspace(-0.4, 0.4, 9),
        )
    };

    let mut spec = TransistorSpec::si_nanowire_nmos(material, 1.0, 8);
    spec.doping_sd = 2e-3;
    let mut tr = spec.build();
    println!(
        "device: {} atoms ({} orbitals), {} slabs, Poisson grid {} nodes",
        tr.device.num_atoms(),
        tr.hamiltonian().dim(),
        tr.device.num_slabs,
        tr.poisson.grid.len()
    );

    let opts = ScfOptions {
        engine: Engine::WfThomas,
        n_energy: if full_band { 35 } else { 31 },
        tol_v: 3e-3,
        max_iter: 20,
        mixing: 0.8,
        predictor: true,
        n_k: 1,
        schedule: Schedule::Static,
    };
    let v_ds = 0.2;

    let (points, secs) = timed(|| gate_sweep(&mut tr, &vgs, v_ds, mu_source, &opts));
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:+.3}", p.v_gate),
                format!("{:.4e}", p.current_ua),
                format!("{}", p.scf_iterations),
                format!("{}", p.converged),
            ]
        })
        .collect();
    print_table(
        "fig3: Id–Vg (self-consistent), V_DS = 0.2 V",
        &["V_G (V)", "I_D (µA)", "SCF its", "conv"],
        &rows,
    );
    if let Some(ss) = subthreshold_swing(&points) {
        println!("\nsubthreshold swing ≈ {ss:.1} mV/dec (thermionic limit 59.6)");
    }
    if let Some(r) = on_off_ratio(&points) {
        println!("on/off over sweep ≈ {r:.2e}");
    }
    println!("total sweep time: {secs:.1} s");
    assert!(
        points.iter().all(|p| p.converged),
        "every bias point must converge"
    );
}
