//! fig1_bands — bulk bandstructure validation (model-validity figure).
//!
//! Regenerates the series of the bulk-band validation plot: energies of the
//! lowest 6 bands along L–Γ–X for Si (sp3s* and sp3d5s*) and GaAs (sp3s*),
//! plus the extracted gap table the figure caption reports.

use omen_bench::print_table;
use omen_lattice::Vec3;
use omen_tb::bulk::{band_gap, bulk_bands, path_l_gamma_x};
use omen_tb::{Material, TbParams};

fn main() {
    let materials = [
        Material::SiSp3s,
        Material::SiSp3d5s,
        Material::GaAsSp3s,
        Material::InAsSp3s,
    ];

    let mut gap_rows = Vec::new();
    for m in materials {
        let p = TbParams::of(m);
        let path = path_l_gamma_x(p.a, 40);
        let bands: Vec<Vec<f64>> = path.iter().map(|&k| bulk_bands(&p, k, false)).collect();
        let (vbm, cbm, gap) = band_gap(&bands, 4);
        let cb_gamma = bands[40][4]; // Γ is waypoint index 40 (end of L–Γ)
        let direct = (cb_gamma - cbm).abs() < 1e-6;
        gap_rows.push(vec![
            p.name.to_string(),
            format!("{vbm:+.3}"),
            format!("{cbm:+.3}"),
            format!("{gap:.3}"),
            if direct { "direct (Γ)" } else { "indirect" }.to_string(),
        ]);
    }
    print_table(
        "fig1: bulk band edges (eV)",
        &["material", "VBM", "CBM", "gap", "type"],
        &gap_rows,
    );

    // Band series along the path for the figure itself (Si sp3s*).
    let p = TbParams::of(Material::SiSp3s);
    let path = path_l_gamma_x(p.a, 20);
    println!("\nfig1 series: Si sp3s* bands along L–Γ–X (first 6 bands, eV)");
    println!(
        "{:>5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "k#", "E1", "E2", "E3", "E4", "E5", "E6"
    );
    for (i, &k) in path.iter().enumerate() {
        let b = bulk_bands(&p, k, false);
        println!(
            "{i:>5} {:8.3} {:8.3} {:8.3} {:8.3} {:8.3} {:8.3}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        );
    }

    // Spin-orbit check at Γ for GaAs.
    let pg = TbParams::of(Material::GaAsSp3s);
    let g = bulk_bands(&pg, Vec3::ZERO, true);
    println!(
        "\nGaAs Γ with spin-orbit: split-off at {:+.3} eV, VBM at {:+.3} eV (Δso = {:.3} eV)",
        g[2],
        g[4],
        g[4] - g[2]
    );
}
