//! fig9_complex_bands — evanescent states and tunneling decay (extension).
//!
//! The wave-function formalism's boundary treatment and every tunneling
//! figure of merit rest on the lead's *complex* band structure: at each
//! energy the Bloch factors `λ = e^{ikΔ}` split into propagating
//! (`|λ| = 1`) and evanescent branches, and the smallest decay constant
//! `κ(E) = −ln|λ|/Δ` inside the gap bounds through-barrier leakage.
//!
//! Two panels: (a) the 7-AGNR κ(E) profile across its gap — the quantity
//! that set the TFET leakage floor in fig4 — and (b) the exact analytic
//! check on the 1-D chain.

use omen_bench::print_table;
use omen_num::linspace;
use omen_tb::cband::{min_decay_constant, propagating_count};
use omen_tb::{DeviceHamiltonian, Material, TbParams};

fn main() {
    // --- Panel a: 7-AGNR gap profile ------------------------------------
    let dev = omen_lattice::Device::ribbon_agnr(0.142, 2, 7);
    let p = TbParams::of(Material::GraphenePz);
    let ham = DeviceHamiltonian::new(&dev, p, false);
    let (h00, h01) = ham.lead_blocks(0.0, 0.0);
    let delta = dev.slab_width;
    println!(
        "7-AGNR: slab Δ = {delta:.3} nm, {} orbitals per slab",
        h00.nrows()
    );

    let mut rows = Vec::new();
    let mut kappa_mid: f64 = 0.0;
    let mut kappa_near_edge = f64::INFINITY;
    for e in linspace(-0.8, 0.8, 17) {
        let n_prop = propagating_count(e, &h00, &h01, 1e-4);
        let kappa = min_decay_constant(e, &h00, &h01, 1e-4).map(|k| k / delta);
        if e.abs() < 0.05 {
            kappa_mid = kappa.unwrap_or(0.0);
        }
        if e.abs() > 0.55 && e.abs() < 0.65 {
            if let Some(k) = kappa {
                kappa_near_edge = kappa_near_edge.min(k);
            }
        }
        rows.push(vec![
            format!("{e:+.2}"),
            format!("{n_prop}"),
            match kappa {
                Some(k) => format!("{k:.3}"),
                None => "—".into(),
            },
        ]);
    }
    print_table(
        "fig9a: 7-AGNR complex bands (κ in 1/nm, gap = ±0.63 eV)",
        &["E (eV)", "propagating", "min κ (nm⁻¹)"],
        &rows,
    );
    println!(
        "\nmid-gap decay κ = {kappa_mid:.3} nm⁻¹ ⇒ a 3 nm channel suppresses \
         direct tunneling by e^(−2κL) ≈ {:.1e} — the fig4 leakage floor.",
        (-2.0 * kappa_mid * 3.0).exp()
    );
    assert!(kappa_mid > kappa_near_edge, "κ must peak mid-gap");

    // --- Panel b: analytic chain check ----------------------------------
    use omen_linalg::ZMat;
    use omen_num::c64;
    let h00c = ZMat::from_diag(&[c64::ZERO]);
    let h01c = ZMat::from_diag(&[c64::real(-1.0)]);
    let mut rows = Vec::new();
    let mut worst = 0.0f64;
    for e in [2.2f64, 2.6, 3.0, 3.4] {
        let exact = (e / 2.0).acosh();
        let got = min_decay_constant(e, &h00c, &h01c, 1e-6).unwrap();
        worst = worst.max((got - exact).abs());
        rows.push(vec![
            format!("{e:.1}"),
            format!("{got:.6}"),
            format!("{exact:.6}"),
        ]);
    }
    print_table(
        "fig9b: chain evanescent κΔ vs acosh(E/2t)",
        &["E", "computed", "exact"],
        &rows,
    );
    println!("max deviation: {worst:.2e} ✓");
    assert!(worst < 1e-9);
}
