//! ablations — design-choice studies called out in DESIGN.md.
//!
//! Three independent ablations, each isolating one engineering decision:
//!
//! * **A: SCF charge predictor** — exponential-predictor Gummel vs plain
//!   damped mixing; the predictor is what makes bias points converge in a
//!   handful of outer iterations.
//! * **B: passivation shift** — the dangling-hybrid energy shift vs the
//!   confined wire gap; without it surface states fill the gap and the
//!   device physics is wrong.
//! * **C: numerical broadening η** — accuracy of T(E) against the analytic
//!   chain result vs η; the in-band error is linear in η, while η ≲ 1e-8
//!   hits the decimation's rounding floor at high-symmetry energies — the
//!   production `DEFAULT_ETA = 2e-6` balances the two.

use omen_bench::print_table;
use omen_core::{self_consistent, Bias, Engine, ScfOptions, Schedule, TransistorSpec};
use omen_lattice::{Crystal, Device};
use omen_linalg::ZMat;
use omen_num::{c64, linspace, A_SI};
use omen_sparse::BlockTridiag;
use omen_tb::bands::{wire_bands, wire_gap};
use omen_tb::{DeviceHamiltonian, Material, TbParams};

fn ablation_a_predictor() {
    let mut spec = TransistorSpec::si_nanowire_nmos(Material::SingleBand { t_mev: 1000 }, 1.0, 8);
    spec.doping_sd = 2e-3;
    let bias = Bias {
        v_gate: 0.2,
        v_ds: 0.2,
        mu_source: -3.4,
    };
    let mut rows = Vec::new();
    for (name, predictor, mixing) in [
        ("exponential predictor", true, 0.8),
        ("plain mixing 0.8", false, 0.8),
        ("plain mixing 0.3", false, 0.3),
    ] {
        let mut tr = spec.build();
        let opts = ScfOptions {
            engine: Engine::WfThomas,
            n_energy: 25,
            tol_v: 3e-3,
            max_iter: 40,
            mixing,
            predictor,
            n_k: 1,
            schedule: Schedule::Static,
        };
        let r = self_consistent(&mut tr, &bias, &opts, None);
        rows.push(vec![
            name.to_string(),
            format!("{}", r.iterations),
            format!("{}", r.converged),
            format!("{:.2e}", r.residual),
        ]);
    }
    print_table(
        "ablation A: SCF convergence, predictor vs plain mixing (same bias point)",
        &["scheme", "iterations", "converged", "final |ΔV|"],
        &rows,
    );
}

fn ablation_b_passivation() {
    let dev = Device::nanowire(Crystal::Zincblende { a: A_SI }, 2, 0.8, 0.8);
    let thetas = linspace(0.0, std::f64::consts::PI, 13);
    // Occupied-subband count from the bond topology (independent of shift).
    let offsets = dev.slab_offsets();
    let dang: usize = (0..offsets[1])
        .map(|i| {
            dev.dangling_directions(i)
                .into_iter()
                .filter(|&d| !dev.dangling_is_lead_facing(i, d))
                .count()
        })
        .sum();
    let n_occ = (4 * offsets[1] - dang) / 2;

    let mut rows = Vec::new();
    let mut gaps = Vec::new();
    for shift in [0.0, 2.0, 10.0, 30.0, 100.0] {
        let mut p = TbParams::of(Material::SiSp3s);
        p.passivation_shift = shift;
        let ham = DeviceHamiltonian::new(&dev, p, false);
        let (h00, h01) = ham.lead_blocks(0.0, 0.0);
        let bands = wire_bands(&h00, &h01, &thetas);
        // With shift = 0, n_occ counts surface states as occupied too; the
        // same counting exposes the gap collapse.
        let (_vbm, _cbm, gap) = wire_gap(&bands, n_occ);
        rows.push(vec![format!("{shift:5.1}"), format!("{gap:+.3}")]);
        gaps.push(gap);
    }
    assert!(
        gaps[0] < gaps[3] - 0.5,
        "unpassivated surface states must collapse the gap: {gaps:?}"
    );
    assert!(
        (gaps[4] - gaps[3]).abs() < 0.5,
        "the gap must saturate for large shifts: {gaps:?}"
    );
    print_table(
        "ablation B: 0.8 nm Si wire gap vs dangling-hybrid shift (eV)",
        &["shift (eV)", "gap (eV)"],
        &rows,
    );
    println!("(small shifts leave surface hybrids inside the gap; ≥ ~10 eV saturates)");
}

fn ablation_c_eta() {
    // Pristine chain: T must be exactly 1 in band; deviation measures the
    // numerical broadening error.
    let nb = 8;
    let diag: Vec<ZMat> = (0..nb).map(|_| ZMat::from_diag(&[c64::ZERO])).collect();
    let off: Vec<ZMat> = (0..nb - 1)
        .map(|_| ZMat::from_diag(&[c64::real(-1.0)]))
        .collect();
    let h = BlockTridiag::new(diag, off.clone(), off);
    let h00 = ZMat::from_diag(&[c64::ZERO]);
    let h01 = ZMat::from_diag(&[c64::real(-1.0)]);

    let mut rows = Vec::new();
    for eta in [1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3] {
        let mut worst = 0.0f64;
        for &e in &[-1.3f64, -0.6, 0.05, 0.9, 1.55] {
            let sl = omen_negf::sancho::ContactSelfEnergy::compute(
                e,
                eta,
                &h00,
                &h01,
                omen_negf::sancho::Side::Left,
            )
            .expect("left lead failed");
            let sr = omen_negf::sancho::ContactSelfEnergy::compute(
                e,
                eta,
                &h00,
                &h01,
                omen_negf::sancho::Side::Right,
            )
            .expect("right lead failed");
            let a = omen_negf::rgf::build_a_matrix(e, eta, &h, &sl, &sr);
            let r = omen_negf::rgf::rgf_solve(&a, &sl.gamma, &sr.gamma).expect("RGF solve failed");
            worst = worst.max((r.transmission - 1.0).abs());
        }
        rows.push(vec![format!("{eta:.0e}"), format!("{worst:.2e}")]);
    }
    print_table(
        "ablation C: max |T − 1| on a clean chain vs numerical broadening η",
        &["η (eV)", "max error"],
        &rows,
    );
    println!(
        "(in-band error scales linearly with η; DEFAULT_ETA = 2e-6 keeps it \
         below 1e-4 while staying safely above the decimation rounding floor \
         that bites at high-symmetry energies for η ≲ 1e-8 — see the \
         omen-negf::sancho docs)"
    );
}

fn ablation_d_strain() {
    // Hydrostatic strain on a Si wire through Harrison scaling: bond
    // stretching weakens every hopping as (d0/d)^2, narrowing the bands and
    // moving the gap. The deformation trend (monotone gap response) is the
    // observable.
    let p = TbParams::of(Material::SiSp3s);
    let dev0 = Device::nanowire(Crystal::Zincblende { a: A_SI }, 2, 1.0, 1.0);
    let thetas = linspace(0.0, std::f64::consts::PI, 13);
    let offsets = dev0.slab_offsets();
    let dang: usize = (0..offsets[1])
        .map(|i| {
            dev0.dangling_directions(i)
                .into_iter()
                .filter(|&d| !dev0.dangling_is_lead_facing(i, d))
                .count()
        })
        .sum();
    let n_occ = (4 * offsets[1] - dang) / 2;

    let mut rows = Vec::new();
    let mut gaps = Vec::new();
    for eps in [-0.02, -0.01, 0.0, 0.01, 0.02] {
        let dev = dev0.strained(eps, eps, eps);
        let ham = DeviceHamiltonian::new(&dev, p, false);
        let (h00, h01) = ham.lead_blocks(0.0, 0.0);
        let bands = wire_bands(&h00, &h01, &thetas);
        let (_v, _c, gap) = wire_gap(&bands, n_occ);
        rows.push(vec![format!("{:+.1}%", eps * 100.0), format!("{gap:.3}")]);
        gaps.push(gap);
    }
    print_table(
        "ablation D: 1 nm Si wire gap vs hydrostatic strain (Harrison d⁻² scaling)",
        &["strain", "gap (eV)"],
        &rows,
    );
    // Monotone response across the strain range.
    let increasing = gaps.windows(2).all(|w| w[1] >= w[0] - 1e-9);
    let decreasing = gaps.windows(2).all(|w| w[1] <= w[0] + 1e-9);
    assert!(
        increasing || decreasing,
        "gap response must be monotone: {gaps:?}"
    );
    println!("(tensile strain weakens the couplings; the gap responds monotonically)");
}

fn main() {
    ablation_a_predictor();
    ablation_b_passivation();
    ablation_c_eta();
    ablation_d_strain();
}
