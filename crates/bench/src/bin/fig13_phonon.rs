//! fig13_phonon — phonon dispersion and ballistic thermal conductance
//! (extension; the thermal experiment class of the author group's
//! suspended-nanowire papers).
//!
//! Three panels: (a) the phonon dispersion of a thin Si wire from the
//! Keating valence force field, (b) the phonon transmission staircase, and
//! (c) the ballistic Landauer thermal conductance κ(T), whose T → 0 limit
//! is the universal quantum π²k_B²T/3h per gapless branch — reproduced
//! quantitatively.

use omen_bench::print_table;
use omen_lattice::{Crystal, Device};
use omen_num::{linspace, A_SI};
use omen_phonon::{
    phonon_dispersion, phonon_transmission, thermal_conductance, KeatingModel, PhononSystem,
    KAPPA_QUANTUM_W_PER_K2,
};

fn main() {
    let dev = Device::nanowire(Crystal::Zincblende { a: A_SI }, 6, 0.8, 0.8);
    let sys = PhononSystem::build(&dev, KeatingModel::silicon());
    println!(
        "0.8 nm Si wire: {} atoms, {} phonon modes per slab, ω_max = {:.1} rad/ps \
         ({:.1} THz)",
        dev.num_atoms(),
        sys.d00.nrows(),
        sys.omega_max,
        sys.omega_max / (2.0 * std::f64::consts::PI)
    );

    // Panel a: dispersion of the lowest branches.
    let qs = linspace(0.0, std::f64::consts::PI, 9);
    let bands = phonon_dispersion(&sys.d00, &sys.d01, &qs);
    let mut rows = Vec::new();
    for (iq, &q) in qs.iter().enumerate() {
        rows.push(vec![
            format!("{:.3}", q / std::f64::consts::PI),
            format!("{:.2}", bands[iq][0]),
            format!("{:.2}", bands[iq][1]),
            format!("{:.2}", bands[iq][2]),
            format!("{:.2}", bands[iq][3]),
            format!("{:.2}", bands[iq][6]),
        ]);
    }
    print_table(
        "fig13a: wire phonon dispersion (rad/ps; flexural×2, torsion, LA, + an optical branch)",
        &["q·Δ/π", "ω1", "ω2", "ω3", "ω4", "ω7"],
        &rows,
    );

    // Panel b: transmission staircase.
    let mut rows = Vec::new();
    for w in [0.5, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0] {
        if w > sys.omega_max {
            break;
        }
        let t = phonon_transmission(&sys, w).expect("phonon point failed");
        rows.push(vec![format!("{w:.1}"), format!("{t:.3}")]);
    }
    print_table(
        "fig13b: ballistic phonon transmission",
        &["ω (rad/ps)", "T(ω)"],
        &rows,
    );

    // Panel c: κ(T) with the universal low-T check.
    let mut rows = Vec::new();
    for t in [1.0, 2.0, 5.0, 20.0, 77.0, 150.0, 300.0] {
        let kappa = thermal_conductance(&sys, t, 48).expect("phonon sweep failed");
        let quanta = kappa / (t * KAPPA_QUANTUM_W_PER_K2);
        rows.push(vec![
            format!("{t:.0}"),
            format!("{:.3e}", kappa),
            format!("{quanta:.2}"),
        ]);
    }
    print_table(
        "fig13c: ballistic thermal conductance",
        &["T (K)", "κ (W/K)", "κ / (T·κ₀)"],
        &rows,
    );
    let k2 = thermal_conductance(&sys, 2.0, 48).expect("phonon sweep failed");
    let quanta = k2 / (2.0 * KAPPA_QUANTUM_W_PER_K2);
    println!(
        "\nuniversal limit: κ/T at 2 K = {quanta:.2} quanta (4 gapless wire \
         branches expected) — the parameter-free check of the whole \
         VFF → dynamical-matrix → NEGF chain."
    );
    assert!((quanta - 4.0).abs() < 0.5);
}
