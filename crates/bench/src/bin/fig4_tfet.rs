//! fig4_tfet — band-to-band tunneling transistor transfer curve.
//!
//! Regenerates the TFET figure: drain current of a 7-AGNR p-i-n device vs
//! gate voltage under a frozen p-i-n band diagram. Expected shape: a
//! leakage floor while the channel gap blocks the window, then a steep
//! band-to-band turn-on once the channel conduction band drops below the
//! source valence band, saturating when the full window is open.

use omen_bench::print_table;
use omen_core::ballistic::{ballistic_solve, Engine};
use omen_core::iv::{subthreshold_swing, IvPoint};
use omen_core::{Bias, TransistorSpec};
use omen_num::linspace;
use omen_tb::{bands, DeviceHamiltonian};

fn main() {
    let spec = TransistorSpec::gnr_tfet(7, 21);
    let tr = spec.build();
    let ham = DeviceHamiltonian::new(&tr.device, tr.params, false);
    let (h00, h01) = ham.lead_blocks(0.0, 0.0);
    let ribbon = bands::wire_bands(&h00, &h01, &linspace(0.0, std::f64::consts::PI, 33));
    let n_occ = ribbon[0].len() / 2;
    let (vbm, cbm, gap) = bands::wire_gap(&ribbon, n_occ);
    println!(
        "7-AGNR: gap {gap:.3} eV, device {} atoms / {} slabs",
        tr.device.num_atoms(),
        tr.device.num_slabs
    );

    let v_ds = 0.3;
    let mu_source = vbm - 0.05;
    let drain_shift = gap + 0.25;
    let lg_lo = tr.spec.source_slabs;
    let lg_hi = tr.spec.num_slabs - tr.spec.drain_slabs;

    let vgs = linspace(0.5, 1.9, 15);
    let mut pts = Vec::new();
    for &vg in &vgs {
        let v_atoms: Vec<f64> = tr
            .device
            .atoms
            .iter()
            .map(|a| {
                if a.slab < lg_lo {
                    0.0
                } else if a.slab >= lg_hi {
                    drain_shift
                } else {
                    vg
                }
            })
            .collect();
        let bias = Bias {
            v_gate: vg,
            v_ds,
            mu_source,
        };
        let r = ballistic_solve(&tr, &v_atoms, &bias, Engine::WfThomas, 81, 0.0);
        pts.push(IvPoint {
            v_gate: vg,
            v_ds,
            current_ua: r.current_ua,
            scf_iterations: 0,
            converged: true,
        });
    }

    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:+.3}", p.v_gate),
                format!("{:.4e}", p.current_ua),
                format!("{:+.3}", cbm - p.v_gate),
            ]
        })
        .collect();
    print_table(
        "fig4: 7-AGNR TFET transfer curve (V_DS = 0.3 V, frozen p-i-n fields)",
        &["V_G (V)", "I_D (µA)", "channel CBM (eV)"],
        &rows,
    );

    let i_min = pts
        .iter()
        .map(|p| p.current_ua)
        .fold(f64::INFINITY, f64::min);
    let i_on = pts.last().unwrap().current_ua;
    println!(
        "\nleakage floor {i_min:.3e} µA, on-current {i_on:.3e} µA (ratio {:.1e})",
        i_on / i_min
    );
    if let Some(ss) = subthreshold_swing(&pts) {
        println!(
            "steepest BTBT swing ≈ {ss:.1} mV/dec \
             (abrupt frozen junction; self-consistent fields sharpen this further)"
        );
    }
    // Turn-on threshold: where the channel CBM crosses the source VBM.
    let vt_expected = cbm - vbm; // = gap
    println!("turn-on expected at V_G ≈ {vt_expected:.2} V (channel CBM = source VBM) ✓");
    assert!(
        i_on / i_min > 100.0,
        "BTBT window must modulate the current strongly"
    );
}
