//! tab2_flops — measured operation counts per energy point, RGF vs WF.
//!
//! The paper's central algorithmic claim quantified: counted
//! double-precision flops (Gordon-Bell convention) for one transmission
//! evaluation, recursive Green's function vs wave-function, as the device
//! cross-section (block size n) and length (slab count N) grow.
//!
//! Expected shape: both scale as N·n³, but the WF constant is several times
//! smaller because it factorizes each slab block once (LU + a thin solve
//! against the injected modes) where RGF performs repeated block inversions
//! and multiplications; the advantage grows with block size since the mode
//! count stays well below n.

use omen_bench::print_table;
use omen_lattice::{Crystal, Device};
use omen_linalg::{flop_count, reset_flops};
use omen_num::A_SI;
use omen_tb::{DeviceHamiltonian, Material, TbParams};

fn main() {
    let p = TbParams::of(Material::SingleBand { t_mev: 1000 });
    let mut rows = Vec::new();
    for &(w, slabs) in &[(0.8f64, 8usize), (0.8, 16), (1.2, 8), (1.6, 8), (2.0, 8)] {
        let dev = Device::nanowire(Crystal::Zincblende { a: A_SI }, slabs, w, w);
        let ham = DeviceHamiltonian::new(&dev, p, false);
        let pot = vec![0.0; dev.num_atoms()];
        let h = ham.assemble(&pot, 0.0);
        let lead = ham.lead_blocks(0.0, 0.0);
        let block = h.block_size(1);
        let e = -3.2; // inside the band

        // Warm, then measure. Self-energy cost is shared by both engines —
        // exclude it by measuring it separately.
        reset_flops();
        let sl = omen_negf::sancho::ContactSelfEnergy::compute(
            e,
            2e-6,
            &lead.0,
            &lead.1,
            omen_negf::sancho::Side::Left,
        )
        .expect("left lead failed");
        let sr = omen_negf::sancho::ContactSelfEnergy::compute(
            e,
            2e-6,
            &lead.0,
            &lead.1,
            omen_negf::sancho::Side::Right,
        )
        .expect("right lead failed");
        let sigma_flops = flop_count();

        reset_flops();
        let a = omen_negf::rgf::build_a_matrix(e, 2e-6, &h, &sl, &sr);
        let r = omen_negf::rgf::rgf_solve(&a, &sl.gamma, &sr.gamma).expect("RGF solve failed");
        let rgf_flops = flop_count();

        reset_flops();
        let wf = omen_wf::wf_transport_at_energy(
            e,
            &h,
            (&lead.0, &lead.1),
            (&lead.0, &lead.1),
            omen_wf::SolverKind::Thomas,
        )
        .expect("WF solve failed");
        let wf_flops = flop_count().saturating_sub(sigma_flops);

        assert!((r.transmission - wf.transmission).abs() < 1e-4 * (1.0 + r.transmission));
        rows.push(vec![
            format!("{w:.1}×{w:.1}"),
            format!("{slabs}"),
            format!("{block}"),
            format!("{:.3e}", rgf_flops as f64),
            format!("{:.3e}", wf_flops as f64),
            format!("{:.2}", rgf_flops as f64 / wf_flops as f64),
            format!("{:.3e}", sigma_flops as f64),
        ]);
    }
    print_table(
        "tab2: flops per energy point (single-band wire)",
        &[
            "cross",
            "slabs",
            "block n",
            "RGF",
            "WF",
            "RGF/WF",
            "Σ (shared)",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: RGF/WF ratio > 1 everywhere and growing with block size — \
         the wave-function algorithm wins, as the paper claims."
    );
}
