//! tab2_flops — measured operation counts per energy point, RGF vs WF.
//!
//! The paper's central algorithmic claim quantified: counted
//! double-precision flops (Gordon-Bell convention) for one transmission
//! evaluation, recursive Green's function vs wave-function, as the device
//! cross-section (block size n) and length (slab count N) grow.
//!
//! Expected shape: both scale as N·n³, but the WF constant is several times
//! smaller because it factorizes each slab block once (LU + a thin solve
//! against the injected modes) where RGF performs repeated block inversions
//! and multiplications; the advantage grows with block size since the mode
//! count stays well below n.
//!
//! `--json` additionally times each engine's solve and merges
//! `rgf_energy_point` / `wf_energy_point` throughput records (counted
//! Gflop/s at the slab-block size) into the repo-root
//! `BENCH_kernels.json` baseline; `--smoke` restricts the sweep to the
//! smallest device so CI can exercise the emitter cheaply.

use omen_bench::kernel_json::{self, KernelRecord};
use omen_bench::{print_table, timed};
use omen_lattice::{Crystal, Device};
use omen_linalg::{flop_count, reset_flops, threads};
use omen_num::A_SI;
use omen_tb::{DeviceHamiltonian, Material, TbParams};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let smoke = std::env::args().any(|a| a == "--smoke");
    omen_core::log::emit_kernel_dispatch();
    let simd = threads::simd_path() == threads::SimdPath::Avx2Fma;
    let p = TbParams::of(Material::SingleBand { t_mev: 1000 });
    let mut rows = Vec::new();
    let mut records: Vec<KernelRecord> = Vec::new();
    let configs: &[(f64, usize)] = if smoke {
        &[(0.8, 8)]
    } else {
        &[(0.8, 8), (0.8, 16), (1.2, 8), (1.6, 8), (2.0, 8)]
    };
    for &(w, slabs) in configs {
        let dev = Device::nanowire(Crystal::Zincblende { a: A_SI }, slabs, w, w);
        let ham = DeviceHamiltonian::new(&dev, p, false);
        let pot = vec![0.0; dev.num_atoms()];
        let h = ham.assemble(&pot, 0.0);
        let lead = ham.lead_blocks(0.0, 0.0);
        let block = h.block_size(1);
        let e = -3.2; // inside the band

        // Warm, then measure. Self-energy cost is shared by both engines —
        // exclude it by measuring it separately.
        reset_flops();
        let sl = omen_negf::sancho::ContactSelfEnergy::compute(
            e,
            2e-6,
            &lead.0,
            &lead.1,
            omen_negf::sancho::Side::Left,
        )
        .expect("left lead failed");
        let sr = omen_negf::sancho::ContactSelfEnergy::compute(
            e,
            2e-6,
            &lead.0,
            &lead.1,
            omen_negf::sancho::Side::Right,
        )
        .expect("right lead failed");
        let sigma_flops = flop_count();

        reset_flops();
        let a = omen_negf::rgf::build_a_matrix(e, 2e-6, &h, &sl, &sr);
        let (r, rgf_s) = timed(|| {
            omen_negf::rgf::rgf_solve(&a, &sl.gamma, &sr.gamma).expect("RGF solve failed")
        });
        let rgf_flops = flop_count();

        reset_flops();
        let (wf, wf_s) = timed(|| {
            omen_wf::wf_transport_at_energy(
                e,
                &h,
                (&lead.0, &lead.1),
                (&lead.0, &lead.1),
                omen_wf::SolverKind::Thomas,
            )
            .expect("WF solve failed")
        });
        let wf_flops = flop_count().saturating_sub(sigma_flops);

        assert!((r.transmission - wf.transmission).abs() < 1e-4 * (1.0 + r.transmission));
        if json {
            let t = threads::configured_threads();
            records.push(KernelRecord {
                kernel: "rgf_energy_point".into(),
                n: block,
                threads: t,
                simd,
                median_s: rgf_s,
                min_s: rgf_s,
                gflops: rgf_flops as f64 / rgf_s / 1e9,
            });
            records.push(KernelRecord {
                kernel: "wf_energy_point".into(),
                n: block,
                threads: t,
                simd,
                median_s: wf_s,
                min_s: wf_s,
                gflops: wf_flops as f64 / wf_s / 1e9,
            });
        }
        rows.push(vec![
            format!("{w:.1}×{w:.1}"),
            format!("{slabs}"),
            format!("{block}"),
            format!("{:.3e}", rgf_flops as f64),
            format!("{:.3e}", wf_flops as f64),
            format!("{:.2}", rgf_flops as f64 / wf_flops as f64),
            format!("{:.3e}", sigma_flops as f64),
        ]);
    }
    print_table(
        "tab2: flops per energy point (single-band wire)",
        &[
            "cross",
            "slabs",
            "block n",
            "RGF",
            "WF",
            "RGF/WF",
            "Σ (shared)",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: RGF/WF ratio > 1 everywhere and growing with block size — \
         the wave-function algorithm wins, as the paper claims."
    );
    if json {
        let path = if smoke {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../target/BENCH_kernels.smoke.json")
        } else {
            kernel_json::default_path()
        };
        kernel_json::merge_records(&path, &records).expect("write benchmark baseline");
        println!(
            "wrote {} transport records -> {}",
            records.len(),
            path.display()
        );
    }
}
