//! fig10_alloy — random-alloy disorder vs the virtual crystal (extension).
//!
//! The experiment class behind the authors' SiGe nanowire studies: in the
//! virtual crystal approximation (VCA) a Si₁₋ₓGeₓ wire stays ballistic with
//! integer conductance steps, while a random site-by-site species
//! assignment scatters carriers — ⟨T⟩ drops below the VCA staircase, more
//! so for longer channels and stronger composition disorder (x → 0.5).
//!
//! Expected shape: T_pure(E) ≥ T_VCA-like(E) ≥ ⟨T_alloy(E)⟩, with the
//! deficit growing with x(1−x) and channel length — the atomistic effect a
//! VCA simulator cannot capture at all.

use omen_bench::print_table;
use omen_lattice::{Crystal, Device};
use omen_num::linspace;
use omen_tb::{virtual_crystal, AlloyModel, DeviceHamiltonian, Material, TbParams};

fn mean_transmission(
    ham: &DeviceHamiltonian<'_>,
    lead: (&omen_linalg::ZMat, &omen_linalg::ZMat),
    energies: &[f64],
) -> f64 {
    let pot = vec![0.0; ham.device().num_atoms()];
    let h = ham.assemble(&pot, 0.0);
    energies
        .iter()
        .map(|&e| {
            omen_wf::wf_transport_at_energy(e, &h, lead, lead, omen_wf::SolverKind::Thomas)
                .expect("transport point failed")
                .transmission
        })
        .sum::<f64>()
        / energies.len() as f64
}

fn main() {
    let si = TbParams::of(Material::SiSp3s);
    let ge = TbParams::of(Material::GeSp3s);
    // Geometry on the Si lattice (leads are pure Si; the VCA lattice
    // mismatch enters through Harrison scaling on mixed bonds).
    let dev = Device::nanowire(Crystal::Zincblende { a: si.a }, 10, 0.9, 0.9);
    println!(
        "device: {} atoms, {} slabs ({} interior alloy slabs), Si leads",
        dev.num_atoms(),
        dev.num_slabs,
        dev.num_slabs - 2
    );

    // Energy window just above the Si wire conduction edge.
    let energies = linspace(1.85, 2.25, 9);

    // Pure Si reference.
    let ham_si = DeviceHamiltonian::new(&dev, si, false);
    let lead = ham_si.lead_blocks(0.0, 0.0);
    let t_pure = mean_transmission(&ham_si, (&lead.0, &lead.1), &energies);
    println!("pure Si wire: ⟨T⟩ = {t_pure:.4} over the window");

    let mut rows = Vec::new();
    for &x in &[0.15, 0.3, 0.5] {
        // VCA channel (still perfectly periodic → ballistic).
        let vca = virtual_crystal(&si, &ge, x);
        let mut is_vca = vec![false; dev.num_atoms()];
        let last = dev.num_slabs - 1;
        for (i, a) in dev.atoms.iter().enumerate() {
            is_vca[i] = a.slab != 0 && a.slab != last;
        }
        let ham_vca = DeviceHamiltonian::new_alloy(
            &dev,
            AlloyModel {
                params_a: si,
                params_b: vca,
                is_b: is_vca,
            },
            false,
        );
        let t_vca = mean_transmission(&ham_vca, (&lead.0, &lead.1), &energies);

        // Random alloy: average over seeds.
        let seeds = [11u64, 23, 47, 71];
        let mut t_alloy = 0.0;
        for &seed in &seeds {
            let m = AlloyModel::random_channel(&dev, si, ge, x, seed);
            let ham = DeviceHamiltonian::new_alloy(&dev, m, false);
            t_alloy += mean_transmission(&ham, (&lead.0, &lead.1), &energies);
        }
        t_alloy /= seeds.len() as f64;

        rows.push(vec![
            format!("{x:.2}"),
            format!("{t_vca:.4}"),
            format!("{t_alloy:.4}"),
            format!("{:.3}", t_alloy / t_vca),
        ]);
        assert!(
            t_alloy < t_vca + 0.02,
            "random disorder must not beat the ordered channel: {t_alloy} vs {t_vca}"
        );
    }
    print_table(
        "fig10: Si₁₋ₓGeₓ nanowire, disorder vs virtual crystal (⟨T⟩ over window)",
        &["x (Ge)", "VCA-channel", "random alloy (4 seeds)", "ratio"],
        &rows,
    );
    println!(
        "\nexpected shape: the random alloy transmits less than the ordered \
         (VCA-like) channel, with the deficit growing with composition \
         disorder — the atomistic-disorder effect motivating the real-space \
         basis."
    );
}
