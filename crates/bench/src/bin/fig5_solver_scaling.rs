//! fig5_solver_scaling — SplitSolve strong scaling vs ranks.
//!
//! The spatial parallel level in isolation: the rank-distributed block
//! cyclic reduction solve of one block-tridiagonal system at growing rank
//! counts. For every rank count the *executed* quantities are measured —
//! total arithmetic (instrumented flops) and communication (messages,
//! bytes) — and converted to time on the Jaguar machine model; wall-clock
//! on this host is also reported (meaningful only when the host has at
//! least as many cores as ranks — the runtime prints the host parallelism
//! so the two are never confused).
//!
//! Expected shape: near-linear projected speedup while slabs/ranks ≫ 1,
//! bending over as the log₂(N) reduction tree serializes the tail; the
//! 1-rank column carries the classic ~2–2.7× cyclic-reduction arithmetic
//! premium over block-Thomas.

use omen_bench::{print_table, timed};
use omen_linalg::{flop_count, reset_flops, ZMat};
use omen_num::c64;
use omen_parsim::{run_ranks, Comm, MachineModel};
use omen_sparse::BlockTridiag;
use omen_wf::{splitsolve_parallel, thomas_solve};

fn system(nb: usize, bs: usize, nrhs: usize) -> (BlockTridiag, Vec<ZMat>) {
    let mut s = 0x1234_5678u64;
    let mut next = move || {
        s = s.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    let mut rnd = |r: usize, c: usize| ZMat::from_fn(r, c, |_, _| c64::new(next(), next()));
    let diag: Vec<ZMat> = (0..nb)
        .map(|_| {
            let mut d = rnd(bs, bs);
            for i in 0..bs {
                d[(i, i)] += c64::real(8.0);
            }
            d
        })
        .collect();
    let lower = (0..nb - 1).map(|_| rnd(bs, bs)).collect();
    let upper = (0..nb - 1).map(|_| rnd(bs, bs)).collect();
    let b = (0..nb).map(|_| rnd(bs, nrhs)).collect();
    (BlockTridiag::new(diag, lower, upper), b)
}

fn main() {
    let (nb, bs, nrhs) = (64usize, 64usize, 8usize);
    let (a, b) = system(nb, bs, nrhs);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "system: {nb} slabs × block {bs}, {nrhs} RHS columns (host parallelism: {host_cores})"
    );

    // Sequential baseline: flops and wall-clock of block-Thomas.
    reset_flops();
    let (x_ref, t_thomas) = timed(|| thomas_solve(&a, &b).expect("Thomas solve failed"));
    let thomas_flops = flop_count();
    println!(
        "block-Thomas baseline: {t_thomas:.3} s, {:.3e} flops",
        thomas_flops as f64
    );

    let m = MachineModel::jaguar_xt5();
    let mut rows = Vec::new();
    let mut t1_proj = 0.0;
    for &ranks in &[1usize, 2, 4, 8, 16] {
        reset_flops();
        let ((results, stats), wall) = timed(|| {
            let out = run_ranks(ranks, |ctx| {
                let comm = Comm::world(ctx);
                splitsolve_parallel(&comm, &a, &b)
            })
            .flattened();
            let stats = out.total_stats();
            (out.unwrap_all(), stats)
        });
        let total_flops = flop_count();
        for (x, y) in results[0].iter().zip(&x_ref) {
            assert!((x - y).max_abs() < 1e-7, "SplitSolve must match Thomas");
        }
        // Projection: balanced critical path = flops/ranks on one Jaguar
        // core + the executed message traffic through the link model.
        let t_comp = m.compute_time(total_flops as f64 / ranks as f64);
        let msgs = stats.messages_sent as f64 / ranks as f64;
        let bytes = stats.bytes_sent as f64 / ranks as f64;
        let t_proj = t_comp + msgs * m.latency + bytes / m.bandwidth;
        if ranks == 1 {
            t1_proj = t_proj;
        }
        rows.push(vec![
            format!("{ranks}"),
            format!("{:.3e}", total_flops as f64),
            format!("{}", stats.messages_sent),
            format!("{:.2e}", stats.bytes_sent as f64),
            format!("{:.4}", t_proj),
            format!("{:.2}", t1_proj / t_proj),
            format!("{:.1}%", 100.0 * t1_proj / (t_proj * ranks as f64)),
            format!("{wall:.3}"),
        ]);
    }
    print_table(
        "fig5: SplitSolve strong scaling (measured flops+comm → Jaguar projection)",
        &[
            "ranks",
            "flops",
            "msgs",
            "bytes",
            "t_jaguar (s)",
            "speedup",
            "efficiency",
            "t_host (s)",
        ],
        &rows,
    );
    println!(
        "\n1-rank BCR arithmetic premium over Thomas: {:.2}× (the price of the \
         parallel elimination tree). Host wall-clock only reflects speedup \
         when host cores ≥ ranks (this host: {host_cores}).",
        t1_proj / m.compute_time(thomas_flops as f64)
    );
}
