//! fig2_wire_bands — nanowire electronic structure vs cross-section.
//!
//! Regenerates the confinement figure: subband gap of square [100] Si
//! nanowires against cross-section size, plus the lowest subband edges for
//! the 1 nm wire. Expected shape: the gap grows monotonically as the wire
//! shrinks (quantum confinement) and approaches the bulk value from above.

use omen_bench::print_table;
use omen_lattice::{Crystal, Device};
use omen_num::{linspace, A_SI};
use omen_tb::bands::{subband_edges, wire_bands, wire_gap};
use omen_tb::{DeviceHamiltonian, Material, TbParams};

fn occupied_subbands(dev: &Device) -> usize {
    let offsets = dev.slab_offsets();
    let n_slab = offsets[1];
    let dang: usize = (0..n_slab)
        .map(|i| {
            dev.dangling_directions(i)
                .into_iter()
                .filter(|&d| !dev.dangling_is_lead_facing(i, d))
                .count()
        })
        .sum();
    (4 * n_slab - dang) / 2
}

fn main() {
    let p = TbParams::of(Material::SiSp3s);
    let thetas = linspace(0.0, std::f64::consts::PI, 25);

    let mut rows = Vec::new();
    let mut last_gap = f64::INFINITY;
    for &w in &[0.8, 1.1, 1.4, 1.7] {
        let dev = Device::nanowire(Crystal::Zincblende { a: A_SI }, 2, w, w);
        let ham = DeviceHamiltonian::new(&dev, p, false);
        let (h00, h01) = ham.lead_blocks(0.0, 0.0);
        let bands = wire_bands(&h00, &h01, &thetas);
        let n_occ = occupied_subbands(&dev);
        let (vbm, cbm, gap) = wire_gap(&bands, n_occ);
        rows.push(vec![
            format!("{w:.1}×{w:.1}"),
            format!("{}", dev.slab_offsets()[1]),
            format!("{vbm:+.3}"),
            format!("{cbm:+.3}"),
            format!("{gap:.3}"),
        ]);
        assert!(
            gap < last_gap + 1e-6,
            "confinement must not increase with size"
        );
        last_gap = gap;
    }
    print_table(
        "fig2: Si [100] nanowire gap vs cross-section (sp3s*, H-passivated)",
        &[
            "size (nm)",
            "atoms/slab",
            "VBM (eV)",
            "CBM (eV)",
            "gap (eV)",
        ],
        &rows,
    );
    println!("\nbulk Si gap (same model): 1.171 eV — wire gaps approach it from above ✓");

    // Subband edges of the 1.1 nm wire (the dispersion figure's inset).
    let dev = Device::nanowire(Crystal::Zincblende { a: A_SI }, 2, 1.1, 1.1);
    let ham = DeviceHamiltonian::new(&dev, p, false);
    let (h00, h01) = ham.lead_blocks(0.0, 0.0);
    let bands = wire_bands(&h00, &h01, &thetas);
    let n_occ = occupied_subbands(&dev);
    let edges = subband_edges(&bands);
    println!("\n1.1 nm wire: lowest 5 conduction subband edges (eV):");
    for (i, e) in edges[n_occ..].iter().take(5).enumerate() {
        println!("  CB{}  {e:+.4}", i + 1);
    }
}
