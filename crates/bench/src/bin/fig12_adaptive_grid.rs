//! fig12_adaptive_grid — adaptive vs uniform energy integration (extension).
//!
//! Production transport codes refine the energy grid where the integrand
//! is rough (subband onsets, resonances) instead of paying for a uniformly
//! fine grid at every bias point. This experiment measures the cost/
//! accuracy tradeoff: current error vs solved energy points for uniform
//! grids against the adaptive refinement driver, on the same device.
//!
//! Expected shape: the adaptive curve reaches a given accuracy with a
//! fraction of the energy points — each of which is a full O(N·n³) solve,
//! so the saving multiplies into every level of the parallel hierarchy.

use omen_bench::print_table;
use omen_core::ballistic::{ballistic_solve, ballistic_solve_adaptive, Engine};
use omen_core::{Bias, TransistorSpec};
use omen_tb::Material;

fn main() {
    let mut spec = TransistorSpec::si_nanowire_nmos(Material::SingleBand { t_mev: 1000 }, 1.0, 8);
    spec.doping_sd = 0.0;
    let tr = spec.build();
    let v = vec![0.0; tr.device.num_atoms()];
    let bias = Bias {
        v_gate: 0.0,
        v_ds: 0.25,
        mu_source: -3.4,
    };

    // Ground truth: dense uniform grid.
    let truth = ballistic_solve(&tr, &v, &bias, Engine::WfThomas, 401, 0.0).current_ua;
    println!("reference current (401 uniform points): {truth:.6} µA");

    let mut rows = Vec::new();
    for &n in &[11usize, 21, 41, 81] {
        let i = ballistic_solve(&tr, &v, &bias, Engine::WfThomas, n, 0.0).current_ua;
        rows.push(vec![
            format!("uniform {n}"),
            format!("{n}"),
            format!("{:.4}%", 100.0 * (i - truth).abs() / truth),
        ]);
    }
    for &(n0, tol) in &[(11usize, 2e-2), (11, 5e-3), (15, 1e-3)] {
        let r = ballistic_solve_adaptive(&tr, &v, &bias, Engine::WfThomas, n0, 200, tol, 0.0);
        rows.push(vec![
            format!("adaptive n0={n0} tol={tol:.0e}"),
            format!("{}", r.energies.len()),
            format!("{:.4}%", 100.0 * (r.current_ua - truth).abs() / truth),
        ]);
    }
    print_table(
        "fig12: current error vs solved energy points",
        &["grid", "points", "error vs reference"],
        &rows,
    );
    println!(
        "\nexpected shape: the adaptive rows sit below the uniform rows of \
         equal point count — grid points concentrate at the subband onsets \
         where the Landauer integrand is kinked."
    );
}
