//! fig7_petascale — sustained performance vs core count on the Jaguar model.
//!
//! Reproduces the headline figure's *shape*: sustained double-precision
//! performance of a production workload against core count, up to the full
//! 224,256-core Cray XT5 partition, peaking near 1.44 PFlop/s.
//!
//! What is measured vs modeled (see DESIGN.md §2):
//! * **measured** — the solver flop constant `α` in
//!   `flops/energy-point = α·N_slabs·n³`, fitted from instrumented runs at
//!   two real block sizes (boundary self-energies excluded — the paper's
//!   production mode amortizes open-boundary conditions separately);
//! * **modeled** — the Jaguar per-core sustained GEMM rate (82% of the
//!   10.4 GFlop/s peak), a per-level parallel-efficiency model
//!   (embarrassing levels: load-balance only; spatial level:
//!   `η_s = 0.94^log₂(s)`, the cyclic-reduction tree overhead), and a
//!   LogGP allreduce term. The spatial constant is calibrated so the full
//!   partition lands in the paper's sustained regime; the *shape* (near
//!   linear to O(100k) cores, ~60% of peak at the end) is the reproduced
//!   observable.

use omen_bench::print_table;
use omen_lattice::{Crystal, Device};
use omen_linalg::{flop_count, reset_flops};
use omen_num::A_SI;
use omen_parsim::machine::{CommVolume, MachineModel};
use omen_tb::{DeviceHamiltonian, Material, TbParams};

/// Measures solver-only flops per energy point for a wire of width `w`.
fn measure_alpha(w: f64, slabs: usize) -> (f64, usize, usize) {
    let p = TbParams::of(Material::SingleBand { t_mev: 1000 });
    let dev = Device::nanowire(Crystal::Zincblende { a: A_SI }, slabs, w, w);
    let ham = DeviceHamiltonian::new(&dev, p, false);
    let pot = vec![0.0; dev.num_atoms()];
    let h = ham.assemble(&pot, 0.0);
    let lead = ham.lead_blocks(0.0, 0.0);
    let n = h.block_size(1);
    let e = -3.2;
    let sl = omen_negf::sancho::ContactSelfEnergy::compute(
        e,
        2e-6,
        &lead.0,
        &lead.1,
        omen_negf::sancho::Side::Left,
    )
    .expect("left lead failed");
    let sr = omen_negf::sancho::ContactSelfEnergy::compute(
        e,
        2e-6,
        &lead.0,
        &lead.1,
        omen_negf::sancho::Side::Right,
    )
    .expect("right lead failed");
    let a = omen_negf::rgf::build_a_matrix(e, 2e-6, &h, &sl, &sr);
    // Solver-only measurement: injected-mode solve on the prebuilt system.
    let wl = omen_wf::injection_bundle(&sl.gamma, 1e-9);
    let wr = omen_wf::injection_bundle(&sr.gamma, 1e-9);
    let nb = h.num_blocks();
    let mut b: Vec<omen_linalg::ZMat> = (0..nb)
        .map(|i| omen_linalg::ZMat::zeros(h.block_size(i), wl.w.ncols() + wr.w.ncols()))
        .collect();
    b[0].set_block(0, 0, &wl.w);
    b[nb - 1].set_block(0, wl.w.ncols(), &wr.w);
    reset_flops();
    let _ = omen_wf::thomas_solve(&a, &b).expect("Thomas solve failed");
    let flops = flop_count();
    let alpha = flops as f64 / (slabs as f64 * (n as f64).powi(3));
    (alpha, n, slabs)
}

fn main() {
    // --- Measured: fit α at two block sizes ------------------------------
    let (a1, n1, s1) = measure_alpha(1.2, 8);
    let (a2, n2, s2) = measure_alpha(1.6, 8);
    let alpha = 0.5 * (a1 + a2);
    println!("measured solver constant: α = {a1:.1} (n={n1}, N={s1}), {a2:.1} (n={n2}, N={s2}) → α = {alpha:.1} flops/(slab·n³)");

    // --- Production workload ---------------------------------------------
    // Paper-class device: full-band (10-orbital) cross-section of ~4000
    // rows, 130 slabs; full I–V: 13 bias × 21 k-points × 1000 energies.
    let (n_prod, slabs_prod) = (4000.0_f64, 130.0);
    let per_point = alpha * slabs_prod * n_prod.powi(3);
    let points = 13.0 * 21.0 * 1000.0;
    let total_flops = per_point * points;
    println!("production: {per_point:.2e} flops/point × {points} points = {total_flops:.3e} flops");

    // --- Modeled: Jaguar projection --------------------------------------
    let mut m = MachineModel::jaguar_xt5();
    m.gemm_efficiency = 0.82;
    let bytes_per_block = n_prod * n_prod * 16.0;
    let mut rows = Vec::new();
    for &cores in &[1024usize, 4096, 16384, 65536, 131072, 224_256] {
        // Spatial ranks grow with machine size (memory per node forces it).
        let spatial = ((cores as f64).log2() / 2.5).round().max(1.0) as usize;
        let groups = cores / spatial;
        let points_per_group = (points / groups as f64).ceil();
        // Level efficiencies.
        let eta_load = points / (groups as f64 * points_per_group);
        let eta_spatial = 0.94_f64.powf((spatial as f64).log2());
        let flops_per_rank = per_point * points_per_group / (spatial as f64 * eta_spatial);
        let comm = CommVolume {
            p2p_messages: points_per_group * 2.0 * (spatial as f64).log2().max(1.0),
            p2p_bytes: points_per_group * 2.0 * (spatial as f64).log2().max(1.0) * bytes_per_block
                / (spatial as f64),
            collectives: points_per_group,
            collective_bytes: 1000.0 * 8.0,
        };
        let t = m.project_phase(flops_per_rank, comm, cores) / eta_load;
        let sustained = total_flops / t;
        rows.push(vec![
            format!("{cores}"),
            format!("{spatial}"),
            format!("{:.2e}", t),
            format!("{:.3}", sustained / 1e15),
            format!(
                "{:.1}%",
                100.0 * sustained / (cores as f64 * m.peak_flops_per_core)
            ),
        ]);
    }
    print_table(
        "fig7: projected sustained performance on Cray XT5 Jaguar",
        &["cores", "spatial ranks", "time (s)", "PFlop/s", "% peak"],
        &rows,
    );
    println!(
        "\nexpected shape: near-linear sustained growth to O(100k) cores, \
         ~60% of peak at the full partition — the ~1.44 PFlop/s headline \
         operating regime of the paper."
    );
}
