//! fig8_ballistic_limits — physics sanity figures with analytic references.
//!
//! Two panels:
//! 1. conductance quantization — T(E) of a pristine wire is an integer
//!    staircase equal to the number of occupied subbands at E;
//! 2. single-site barrier — transmission of a δ-like defect in a 1-D chain
//!    against the exact scattering formula `T = 1/(1 + (U/2t sin k)²)`.

use omen_bench::print_table;
use omen_lattice::{Crystal, Device};
use omen_num::{c64, linspace, A_SI};
use omen_sparse::BlockTridiag;
use omen_tb::bands::wire_bands;
use omen_tb::{DeviceHamiltonian, Material, TbParams};

fn main() {
    // --- Panel 1: quantized conductance steps ---------------------------
    let p = TbParams::of(Material::SingleBand { t_mev: 1000 });
    let dev = Device::nanowire(Crystal::Zincblende { a: A_SI }, 3, 1.0, 1.0);
    let ham = DeviceHamiltonian::new(&dev, p, false);
    let pot = vec![0.0; dev.num_atoms()];
    let h = ham.assemble(&pot, 0.0);
    let (h00, h01) = ham.lead_blocks(0.0, 0.0);
    // Half Brillouin zone, fine grid: each sign change of E_b(θ) − E is one
    // right-moving mode (bands may be non-monotonic, so interval membership
    // is not enough — crossings must be counted).
    let thetas = linspace(0.0, std::f64::consts::PI, 801);
    let bands = wire_bands(&h00, &h01, &thetas);

    let mut rows = Vec::new();
    let mut worst = 0.0f64;
    for e in linspace(-3.45, -1.8, 12) {
        let modes: usize = (0..bands[0].len())
            .map(|b| {
                bands
                    .windows(2)
                    .filter(|w| (w[0][b] - e) * (w[1][b] - e) < 0.0)
                    .count()
            })
            .sum();
        let t = omen_negf::transport_at_energy(e, &h, (&h00, &h01), (&h00, &h01))
            .expect("transport point failed")
            .transmission;
        worst = worst.max((t - modes as f64).abs());
        rows.push(vec![
            format!("{e:+.3}"),
            format!("{t:.5}"),
            format!("{modes}"),
        ]);
    }
    print_table(
        "fig8a: conductance quantization (pristine 1 nm wire)",
        &["E (eV)", "T(E)", "modes"],
        &rows,
    );
    println!("max |T − mode count| over the staircase: {worst:.2e} ✓");
    assert!(worst < 5e-3);

    // --- Panel 2: barrier vs analytic -----------------------------------
    let nb = 9;
    let (e0, t_hop, u) = (0.0, -1.0f64, 0.7);
    let diag: Vec<omen_linalg::ZMat> = (0..nb)
        .map(|i| omen_linalg::ZMat::from_diag(&[c64::real(e0 + if i == nb / 2 { u } else { 0.0 })]))
        .collect();
    let off: Vec<omen_linalg::ZMat> = (0..nb - 1)
        .map(|_| omen_linalg::ZMat::from_diag(&[c64::real(t_hop)]))
        .collect();
    let chain = BlockTridiag::new(diag, off.clone(), off);
    let h00c = omen_linalg::ZMat::from_diag(&[c64::real(e0)]);
    let h01c = omen_linalg::ZMat::from_diag(&[c64::real(t_hop)]);

    let mut rows = Vec::new();
    let mut worst = 0.0f64;
    for e in linspace(-1.8, 1.8, 13) {
        let cosk = (e - e0) / (2.0 * t_hop);
        let sink = (1.0 - cosk * cosk).max(0.0).sqrt();
        let exact = 1.0 / (1.0 + (u / (2.0 * t_hop.abs() * sink)).powi(2));
        let t = omen_negf::transport_at_energy(e, &chain, (&h00c, &h01c), (&h00c, &h01c))
            .expect("transport point failed")
            .transmission;
        worst = worst.max((t - exact).abs());
        rows.push(vec![
            format!("{e:+.2}"),
            format!("{t:.6}"),
            format!("{exact:.6}"),
        ]);
    }
    print_table(
        "fig8b: δ-barrier transmission vs exact formula",
        &["E (eV)", "T(E)", "analytic"],
        &rows,
    );
    println!("max deviation from the exact scattering result: {worst:.2e} ✓");
    assert!(worst < 1e-4);
}
