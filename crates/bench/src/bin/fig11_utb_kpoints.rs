//! fig11_utb_kpoints — transverse-momentum integration of a UTB device
//! (extension; the physical content of the paper's *momentum* level).
//!
//! An ultra-thin-body device is periodic transverse to transport, so every
//! observable is a Brillouin-zone average over k_y — the axis the paper
//! parallelizes with its momentum communicators (typically ~21 k-points per
//! bias point). Two panels: (a) convergence of the drain current with the
//! k-grid density, (b) the k-resolved current decomposition showing why a
//! single-k calculation misrepresents a UTB.

use omen_bench::print_table;
use omen_core::ballistic::{ballistic_solve, ballistic_solve_k, momentum_grid, Engine};
use omen_core::{Bias, Geometry, TransistorSpec};
use omen_tb::Material;

fn main() {
    let mut spec = TransistorSpec::si_nanowire_nmos(Material::SingleBand { t_mev: 1000 }, 1.0, 8);
    spec.geometry = Geometry::Utb { cells: 1, h: 1.0 };
    spec.doping_sd = 0.0;
    let tr = spec.build();
    let v = vec![0.0; tr.device.num_atoms()];
    let bias = Bias {
        v_gate: 0.0,
        v_ds: 0.2,
        mu_source: -3.4,
    };
    println!(
        "UTB: {} atoms, transverse period {:.3} nm, thickness {:.1} nm",
        tr.device.num_atoms(),
        tr.device.cross.0,
        tr.device.cross.1
    );

    // Panel a: current vs number of k-points.
    let mut rows = Vec::new();
    let mut last = f64::NAN;
    let mut i_converged = 0.0;
    for &nk in &[1usize, 2, 4, 8, 16] {
        let r = ballistic_solve_k(&tr, &v, &bias, Engine::WfThomas, 31, nk);
        let delta = if last.is_nan() {
            "—".to_string()
        } else {
            format!("{:+.3}%", 100.0 * (r.current_ua - last) / last)
        };
        rows.push(vec![format!("{nk}"), format!("{:.6}", r.current_ua), delta]);
        last = r.current_ua;
        i_converged = r.current_ua;
    }
    print_table(
        "fig11a: UTB drain current vs transverse k-points (per period)",
        &["N_k", "I_D (µA)", "Δ vs previous"],
        &rows,
    );

    // Panel b: the k-resolved decomposition at the converged grid.
    let grid = momentum_grid(&tr, 8);
    let mut rows = Vec::new();
    for &(ky, w) in &grid {
        let r = ballistic_solve(&tr, &v, &bias, Engine::WfThomas, 31, ky);
        rows.push(vec![
            format!("{:.3}", ky * tr.device.cross.0 / std::f64::consts::PI),
            format!("{:.5}", r.current_ua),
            format!("{:.5}", w * r.current_ua),
        ]);
    }
    print_table(
        "fig11b: k-resolved current (k in units of π/L_y)",
        &["k_y·L/π", "I(k) (µA)", "weighted"],
        &rows,
    );
    println!(
        "\nconverged I_D = {i_converged:.5} µA; the k-dispersion of the \
         subbands makes single-k UTB results off by the panel-b spread — \
         hence the paper's dedicated momentum parallel level."
    );
}
