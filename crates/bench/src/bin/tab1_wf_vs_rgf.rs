//! tab1_wf_vs_rgf — numerical equivalence of the transport engines.
//!
//! The wave-function algorithm must reproduce NEGF observables exactly in
//! the ballistic limit; this table reports the maximum deviation of T(E)
//! between RGF, WF(Thomas), WF(BCR) and the dense-inversion reference over
//! an energy sweep, for a 1-D chain, a single-band wire and a full sp3s*
//! silicon wire. Expected shape: all deviations at numerical-noise level.

use omen_bench::print_table;
use omen_lattice::{Crystal, Device};
use omen_num::{c64, linspace, A_SI};
use omen_sparse::BlockTridiag;
use omen_tb::{DeviceHamiltonian, Material, TbParams};

struct Case {
    name: String,
    h: BlockTridiag,
    lead: (omen_linalg::ZMat, omen_linalg::ZMat),
    energies: Vec<f64>,
}

fn chain_case() -> Case {
    let nb = 12;
    let diag: Vec<omen_linalg::ZMat> = (0..nb)
        .map(|i| {
            let u = if (4..7).contains(&i) { 0.5 } else { 0.0 };
            omen_linalg::ZMat::from_diag(&[c64::real(u)])
        })
        .collect();
    let off: Vec<omen_linalg::ZMat> = (0..nb - 1)
        .map(|_| omen_linalg::ZMat::from_diag(&[c64::real(-1.0)]))
        .collect();
    Case {
        name: "1-band chain + barrier".into(),
        h: BlockTridiag::new(diag, off.clone(), off),
        lead: (
            omen_linalg::ZMat::from_diag(&[c64::ZERO]),
            omen_linalg::ZMat::from_diag(&[c64::real(-1.0)]),
        ),
        energies: linspace(-1.83, 1.79, 41),
    }
}

fn wire_case(material: Material, name: &str, w: f64, window: (f64, f64)) -> Case {
    let p = TbParams::of(material);
    let dev = Device::nanowire(Crystal::Zincblende { a: A_SI }, 4, w, w);
    let ham = DeviceHamiltonian::new(&dev, p, false);
    let pot: Vec<f64> = dev
        .atoms
        .iter()
        .map(|a| 0.05 * (a.pos.x / dev.length()))
        .collect();
    let h = ham.assemble(&pot, 0.0);
    let lead = ham.lead_blocks(0.0, 0.0);
    Case {
        name: name.into(),
        h,
        lead,
        energies: linspace(window.0, window.1, 21),
    }
}

fn main() {
    let cases = vec![
        chain_case(),
        wire_case(
            Material::SingleBand { t_mev: 1000 },
            "1-band Si-geometry wire",
            1.0,
            (-3.45, -2.2),
        ),
        wire_case(Material::SiSp3s, "Si sp3s* wire 0.8 nm", 0.8, (1.55, 2.4)),
    ];

    let mut rows = Vec::new();
    for case in &cases {
        let lead = (&case.lead.0, &case.lead.1);
        let mut dev_wf: f64 = 0.0;
        let mut dev_bcr: f64 = 0.0;
        let mut dev_dense: f64 = 0.0;
        let mut t_max: f64 = 0.0;
        for &e in &case.energies {
            let rgf = omen_negf::transport_at_energy(e, &case.h, lead, lead)
                .expect("RGF point failed")
                .transmission;
            let wf = omen_wf::wf_transport_at_energy(
                e,
                &case.h,
                lead,
                lead,
                omen_wf::SolverKind::Thomas,
            )
            .expect("WF point failed")
            .transmission;
            let bcr =
                omen_wf::wf_transport_at_energy(e, &case.h, lead, lead, omen_wf::SolverKind::Bcr)
                    .expect("BCR point failed")
                    .transmission;
            let dense = omen_negf::transmission_dense_reference(e, &case.h, lead, lead)
                .expect("dense reference failed");
            dev_wf = dev_wf.max((wf - rgf).abs());
            dev_bcr = dev_bcr.max((bcr - rgf).abs());
            dev_dense = dev_dense.max((rgf - dense).abs());
            t_max = t_max.max(rgf);
        }
        assert!(
            dev_wf < 1e-4 && dev_bcr < 1e-4 && dev_dense < 1e-6,
            "engines diverged on {}",
            case.name
        );
        rows.push(vec![
            case.name.clone(),
            format!("{}", case.energies.len()),
            format!("{t_max:.2}"),
            format!("{dev_dense:.2e}"),
            format!("{dev_wf:.2e}"),
            format!("{dev_bcr:.2e}"),
        ]);
    }
    print_table(
        "tab1: max |ΔT| between engines over the sweep",
        &["device", "#E", "max T", "RGF−dense", "WF−RGF", "BCR−RGF"],
        &rows,
    );
    println!("\nall engines agree to numerical precision ✓");
}
