//! fig6_multilevel — efficiency of the hierarchical parallel levels.
//!
//! Fixes the total rank budget and sweeps how it is allocated between the
//! energy level (embarrassingly parallel) and the spatial level (SplitSolve,
//! communication- and overhead-bound): the same transmission sweep is
//! executed under each allocation, and the *measured* arithmetic and
//! communication totals are projected onto the Jaguar model. Host
//! wall-clock is reported alongside (meaningful only when the host has
//! enough cores).
//!
//! Expected shape: allocations favoring the energy level are the most
//! efficient (no extra arithmetic, no block traffic); moving ranks to the
//! spatial level costs the cyclic-reduction arithmetic premium plus block
//! exchanges — exactly why the paper parallelizes bias/momentum/energy
//! first and reserves spatial decomposition for memory-bound devices.

use omen_bench::{print_table, timed};
use omen_core::parallel::{
    frozen_system, parallel_transmission, split_levels, LevelConfig, Schedule,
};
use omen_core::{Engine, TransistorSpec};
use omen_linalg::{flop_count, reset_flops};
use omen_num::linspace;
use omen_parsim::{run_ranks, MachineModel};
use omen_tb::Material;

fn main() {
    let mut spec = TransistorSpec::si_nanowire_nmos(Material::SingleBand { t_mev: 1000 }, 1.2, 16);
    spec.doping_sd = 0.0;
    let tr = spec.build();
    let v = vec![0.0; tr.device.num_atoms()];
    let (h, h00, h01) = frozen_system(&tr, &v, 0.0);
    let energies = linspace(-3.45, -2.4, 16);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "workload: {} energies × ({} slabs, block {}); host parallelism {host_cores}",
        energies.len(),
        h.num_blocks(),
        h.block_size(1)
    );

    // Sequential reference for correctness + projection baseline.
    reset_flops();
    let (reference, t_seq) = timed(|| {
        omen_core::parallel::sequential_transmission(
            &h,
            (&h00, &h01),
            (&h00, &h01),
            &energies,
            Engine::WfThomas,
        )
        .expect("sequential sweep failed")
    });
    let seq_flops = flop_count();
    let m = MachineModel::jaguar_xt5();
    let t_seq_proj = m.compute_time(seq_flops as f64);
    println!(
        "sequential: {t_seq:.3} s host, {:.3e} flops ({t_seq_proj:.3} s on one Jaguar core)",
        seq_flops as f64
    );

    let configs = [
        LevelConfig {
            bias: 1,
            momentum: 1,
            energy: 4,
            spatial: 1,
        },
        LevelConfig {
            bias: 1,
            momentum: 1,
            energy: 2,
            spatial: 2,
        },
        LevelConfig {
            bias: 1,
            momentum: 1,
            energy: 1,
            spatial: 4,
        },
    ];
    let mut rows = Vec::new();
    for cfg in &configs {
        reset_flops();
        let ((res, stats), wall) = timed(|| {
            let out = run_ranks(cfg.total(), |ctx| {
                let comms = split_levels(ctx, cfg)?;
                parallel_transmission(
                    &comms,
                    cfg,
                    &h,
                    (&h00, &h01),
                    (&h00, &h01),
                    &energies,
                    Schedule::Static,
                )
                .map(|s| s.transmission)
            })
            .flattened();
            let stats = out.total_stats();
            (out.unwrap_all(), stats)
        });
        let total_flops = flop_count();
        for (a, b) in res[0].iter().zip(&reference) {
            assert!(
                (a - b).abs() < 1e-7 * (1.0 + b.abs()),
                "distributed result must match"
            );
        }
        // Jaguar projection: balanced split of the executed arithmetic plus
        // the executed traffic.
        let t_comp = m.compute_time(total_flops as f64 / cfg.total() as f64);
        let t_comm = stats.messages_sent as f64 / cfg.total() as f64 * m.latency
            + stats.bytes_sent as f64 / cfg.total() as f64 / m.bandwidth;
        let t_proj = t_comp + t_comm;
        rows.push(vec![
            format!("E={} × S={}", cfg.energy, cfg.spatial),
            format!("{:.3e}", total_flops as f64),
            format!("{}", stats.messages_sent),
            format!("{:.2e}", stats.bytes_sent as f64),
            format!("{:.3}", t_proj),
            format!("{:.2}", t_seq_proj / t_proj),
            format!("{:.1}%", 100.0 * t_seq_proj / (t_proj * cfg.total() as f64)),
            format!("{wall:.3}"),
        ]);
    }
    print_table(
        "fig6: 4 ranks allocated across energy × spatial levels (Jaguar projection)",
        &[
            "allocation",
            "flops",
            "msgs",
            "bytes",
            "t_jaguar (s)",
            "speedup",
            "efficiency",
            "t_host (s)",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: the energy allocation approaches ideal efficiency; \
         each rank moved to the spatial level pays the BCR arithmetic \
         premium plus block traffic — matching the paper's communicator \
         design priorities."
    );
}
