//! `bench-gate` — release-blocking perf-regression gate (DESIGN.md §12).
//!
//! Default mode validates the **committed** `BENCH_kernels.json` /
//! `BENCH_sched.json` / `BENCH_serve.json` baselines against the
//! guardbands in the repo-root
//! `TOLERANCES.toml`. `--smoke` additionally checks the **fresh**
//! `target/BENCH_*.smoke.json` records written by
//! `cargo bench -p omen-bench -- --smoke` earlier in the same CI run:
//! structural presence per dispatch leg plus catastrophic-only floors.
//!
//! Exit codes: `0` gate green (or a printed self-skip NOTICE when
//! `OMEN_SIMD=1` demands a leg this CPU cannot run), `1` guardband
//! violations (each printed as a `FAIL` line), `2` configuration errors —
//! unreadable policy or baseline, invalid `OMEN_SIMD` — which are harness
//! bugs, not perf regressions.

use omen_bench::gate::{self, GateReport};
use omen_bench::{kernel_json, sched_json, serve_json};
use omen_linalg::threads;
use omen_num::tolerance::TolerancePolicy;
use omen_num::OmenResult;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn smoke_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../target/{name}"))
}

/// Runs every requested check, folding all failures into one report.
///
/// # Errors
///
/// Returns the underlying typed error when the policy or a baseline file
/// is unreadable or malformed — those are configuration failures, distinct
/// from guardband violations (which land in the report).
fn run(policy: &TolerancePolicy, smoke: bool, simd_leg: bool) -> OmenResult<GateReport> {
    let mut report = GateReport::default();

    let kernels = kernel_json::read_records(&kernel_json::default_path())?;
    report.merge(gate::check_committed_kernels(policy, &kernels));
    let sched = sched_json::read_records(&sched_json::default_path())?;
    report.merge(gate::check_committed_sched(policy, &sched));
    let serve = serve_json::read_records(&serve_json::default_path())?;
    report.merge(gate::check_committed_serve(policy, &serve));

    if smoke {
        let fresh_k = kernel_json::read_records(&smoke_path("BENCH_kernels.smoke.json"))?;
        report.merge(gate::check_smoke_kernels(policy, &fresh_k, simd_leg));
        let fresh_s = sched_json::read_records(&smoke_path("BENCH_sched.smoke.json"))?;
        report.merge(gate::check_smoke_sched(policy, &fresh_s));
        let fresh_v = serve_json::read_records(&smoke_path("BENCH_serve.smoke.json"))?;
        report.merge(gate::check_smoke_serve(policy, &fresh_v));
    }
    Ok(report)
}

fn main() -> ExitCode {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("bench-gate: unknown argument {other:?}\nusage: bench-gate [--smoke]");
                return ExitCode::from(2);
            }
        }
    }

    // Resolve the dispatch leg from OMEN_SIMD without forcing the process
    // down simd_path()'s panicking backstop: an explicit `1` on a CPU
    // without AVX2+FMA is a *self-skip with a notice*, never a silent pass
    // and never a crash.
    let simd_leg = match threads::simd_policy() {
        Ok(Some(true)) if !threads::simd_supported() => {
            println!(
                "bench-gate: NOTICE — OMEN_SIMD=1 requested but this CPU lacks AVX2+FMA; \
                 skipping the SIMD-leg gate (the scalar-leg run still gates this build)"
            );
            return ExitCode::SUCCESS;
        }
        Ok(Some(forced)) => forced,
        Ok(None) => threads::simd_supported(),
        Err(e) => {
            eprintln!("bench-gate: {e}");
            return ExitCode::from(2);
        }
    };

    let policy = match TolerancePolicy::load_default() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bench-gate: {e}");
            return ExitCode::from(2);
        }
    };

    match run(&policy, smoke, simd_leg) {
        Err(e) => {
            eprintln!("bench-gate: {e}");
            ExitCode::from(2)
        }
        Ok(report) if report.is_clean() => {
            println!(
                "bench-gate: OK — {} records within guardbands ({} mode, simd={simd_leg} leg)",
                report.checked,
                if smoke { "smoke" } else { "committed" }
            );
            ExitCode::SUCCESS
        }
        Ok(report) => {
            for f in &report.failures {
                eprintln!("bench-gate: FAIL — {f}");
            }
            eprintln!(
                "bench-gate: {} of {} checks failed (see TOLERANCES.toml to re-baseline \
                 with a rationale)",
                report.failures.len(),
                report.checked
            );
            ExitCode::FAILURE
        }
    }
}
