//! tab3_timetosol — time-to-solution per bias point, engine comparison.
//!
//! Wall-clock time of one complete ballistic bias-point solve (energy
//! sweep + current + charge) with the RGF and wave-function engines on the
//! same device and identical energy grids, for growing cross-sections.
//!
//! Expected shape: WF wins everywhere, with the advantage growing with the
//! block size — the justification for the paper's wave-function production
//! mode.

use omen_bench::{print_table, timed};
use omen_core::ballistic::{ballistic_solve, Engine};
use omen_core::{Bias, TransistorSpec};
use omen_tb::Material;

fn main() {
    let bias = Bias {
        v_gate: 0.0,
        v_ds: 0.2,
        mu_source: -3.3,
    };
    let mut rows = Vec::new();
    for &w in &[0.8f64, 1.2, 1.6, 2.0] {
        let mut spec = TransistorSpec::si_nanowire_nmos(Material::SingleBand { t_mev: 1000 }, w, 8);
        spec.doping_sd = 0.0;
        let tr = spec.build();
        let v = vec![0.0; tr.device.num_atoms()];
        let block = tr.hamiltonian().dim() / tr.device.num_slabs;

        let (r_rgf, t_rgf) = timed(|| ballistic_solve(&tr, &v, &bias, Engine::Rgf, 31, 0.0));
        let (r_wf, t_wf) = timed(|| ballistic_solve(&tr, &v, &bias, Engine::WfThomas, 31, 0.0));
        let (_, t_bcr) = timed(|| ballistic_solve(&tr, &v, &bias, Engine::WfBcr, 31, 0.0));
        assert!(
            (r_rgf.current_ua - r_wf.current_ua).abs() < 1e-3 * r_rgf.current_ua.abs().max(1e-9),
            "engines must agree: {} vs {}",
            r_rgf.current_ua,
            r_wf.current_ua
        );
        rows.push(vec![
            format!("{w:.1}×{w:.1}"),
            format!("{block}"),
            format!("{t_rgf:.3}"),
            format!("{t_wf:.3}"),
            format!("{t_bcr:.3}"),
            format!("{:.2}", t_rgf / t_wf),
        ]);
    }
    print_table(
        "tab3: wall-clock per ballistic bias point (31 energies)",
        &[
            "cross (nm)",
            "block n",
            "RGF (s)",
            "WF-Thomas (s)",
            "WF-BCR (s)",
            "RGF/WF",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: RGF/WF > 1 and growing with block size; BCR carries \
         its ~2× arithmetic premium over Thomas sequentially (it buys \
         parallelism, not serial speed)."
    );
}
