//! fig14_idvd — output characteristic of the nanowire nMOSFET (extension).
//!
//! The second half of a transistor's DC fingerprint: drain current vs
//! drain voltage at fixed gate bias, self-consistently. Expected shape:
//! linear (ohmic) at small V_DS, then saturation once the drain Fermi
//! level falls below the channel barrier — in a ballistic device the
//! saturated current is source-injection limited and nearly flat.

use omen_bench::print_table;
use omen_core::iv::drain_sweep;
use omen_core::{Engine, ScfOptions, Schedule, TransistorSpec};
use omen_num::linspace;
use omen_tb::Material;

fn main() {
    let mut spec = TransistorSpec::si_nanowire_nmos(Material::SingleBand { t_mev: 1000 }, 1.0, 8);
    spec.doping_sd = 2e-3;
    let mut tr = spec.build();
    let opts = ScfOptions {
        engine: Engine::WfThomas,
        n_energy: 31,
        tol_v: 3e-3,
        max_iter: 20,
        mixing: 0.8,
        predictor: true,
        n_k: 1,
        // Cost-model-ordered energy sweeps: bit-identical to Static, but
        // each SCF iteration fronts the points the last one measured slow.
        schedule: Schedule::Dynamic(omen_core::SchedOptions::default()),
    };
    let mu_source = -3.4;
    let v_gate = 0.3; // on-state
    let vds = linspace(0.025, 0.5, 10);

    let pts = drain_sweep(&mut tr, v_gate, &vds, mu_source, &opts);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.3}", p.v_ds),
                format!("{:.5}", p.current_ua),
                format!("{:.2}", p.current_ua / p.v_ds / omen_num::G0_US * 1e3),
                format!("{}", p.scf_iterations),
            ]
        })
        .collect();
    print_table(
        "fig14: Id–Vds at V_G = 0.3 V (self-consistent)",
        &["V_DS (V)", "I_D (µA)", "G/G₀ ×10⁻³ /V", "SCF its"],
        &rows,
    );

    assert!(pts.iter().all(|p| p.converged), "all drain points converge");
    // Monotone current, sublinear beyond the linear region (saturation).
    assert!(pts
        .windows(2)
        .all(|w| w[1].current_ua >= w[0].current_ua * 0.98));
    let g_lin = pts[1].current_ua / pts[1].v_ds;
    let g_sat = (pts[9].current_ua - pts[8].current_ua) / (pts[9].v_ds - pts[8].v_ds);
    println!(
        "\nlinear-region conductance {g_lin:.2} µS vs saturation slope {g_sat:.2} µS \
         (ratio {:.2}) — ballistic saturation once μ_D drops below the barrier.",
        g_sat / g_lin
    );
    assert!(
        g_sat < 0.6 * g_lin,
        "output curve must saturate: {g_sat} vs {g_lin}"
    );
}
