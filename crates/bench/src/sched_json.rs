//! `BENCH_sched.json` — the machine-readable scheduler benchmark baseline.
//!
//! Records load-balance quality of the energy-sweep scheduler on synthetic
//! workloads with a known cost skew: the same unit set is swept once with
//! the static round-robin assignment (`omen_core::parallel::assign`) and
//! once with the dynamic pull-based scheduler (`omen_sched::dynamic_sweep`),
//! and the per-rank busy times are condensed into a load-imbalance ratio
//! (max/mean busy seconds — 1.0 is perfect). Successive PRs compare against
//! the committed baseline instead of against folklore.
//!
//! ## Schema (`omen-bench-sched-v1`)
//!
//! ```json
//! {
//!   "schema": "omen-bench-sched-v1",
//!   "records": [
//!     {"case": "resonance-comb", "schedule": "dynamic", "ranks": 4,
//!      "units": 64, "wall_s": 2.0e-1, "imbalance": 1.08, "reissued": 0}
//!   ]
//! }
//! ```
//!
//! One record per `(case, schedule, ranks)` triple. `imbalance` is the
//! max/mean busy-time ratio over the ranks that actually solved units (the
//! dynamic coordinator only brokers work and is excluded). Merging replaces
//! records with the same key and keeps the rest; the parser is hand-rolled
//! for exactly this schema (the container bakes in no serde), and the
//! writer emits one record per line for reviewable diffs.

use omen_num::{OmenError, OmenResult};
use std::path::{Path, PathBuf};

/// One scheduler measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedRecord {
    /// Workload name (`resonance-comb`, ...).
    pub case: String,
    /// `static` or `dynamic`.
    pub schedule: String,
    /// Total ranks in the sweep group (dynamic: one of them coordinates).
    pub ranks: usize,
    /// Work units swept.
    pub units: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_s: f64,
    /// Max/mean busy-seconds ratio over the solving ranks.
    pub imbalance: f64,
    /// Units re-issued by the dynamic scheduler (0 for static).
    pub reissued: usize,
}

/// Identifier of the only document layout this module reads and writes.
pub const SCHEMA: &str = "omen-bench-sched-v1";

/// Default baseline location: `BENCH_sched.json` at the workspace root.
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sched.json")
}

fn fmt_record(r: &SchedRecord) -> String {
    format!(
        "    {{\"case\": \"{}\", \"schedule\": \"{}\", \"ranks\": {}, \"units\": {}, \"wall_s\": {:.4e}, \"imbalance\": {:.3}, \"reissued\": {}}}",
        r.case, r.schedule, r.ranks, r.units, r.wall_s, r.imbalance, r.reissued
    )
}

/// Serializes `records` as a full document.
pub fn to_json(records: &[SchedRecord]) -> String {
    let body: Vec<String> = records.iter().map(fmt_record).collect();
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"records\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

/// Extracts the raw text of `"key": <value>` from one record object.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let at = obj.find(&tag)? + tag.len();
    let rest = obj[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn req<'a>(obj: &'a str, key: &str) -> Result<&'a str, String> {
    field(obj, key).ok_or_else(|| format!("missing field {key:?}"))
}

fn num<T: std::str::FromStr>(obj: &str, key: &str) -> Result<T, String> {
    let raw = req(obj, key)?;
    raw.parse()
        .map_err(|_| format!("unparsable field {key:?}: {raw:?}"))
}

fn parse_record(obj: &str) -> Result<SchedRecord, String> {
    Ok(SchedRecord {
        case: req(obj, "case")?.trim_matches('"').to_string(),
        schedule: req(obj, "schedule")?.trim_matches('"').to_string(),
        ranks: num(obj, "ranks")?,
        units: num(obj, "units")?,
        wall_s: num(obj, "wall_s")?,
        imbalance: num(obj, "imbalance")?,
        reissued: num(obj, "reissued")?,
    })
}

fn berr(source: &str, detail: impl Into<String>) -> OmenError {
    OmenError::InvalidBaseline {
        path: source.to_string(),
        detail: detail.into(),
    }
}

/// Parses a document produced by [`to_json`]. `source` names the document
/// in error messages (a path, or a logical label in tests).
///
/// # Errors
///
/// Returns [`OmenError::InvalidBaseline`] when the schema tag is missing
/// or not `omen-bench-sched-v1` (the error names the found schema), the
/// records array is absent, or any record fails to parse (the error names
/// the record index and field) — a corrupt baseline is never silently
/// read as a smaller one.
pub fn from_json(source: &str, text: &str) -> OmenResult<Vec<SchedRecord>> {
    let schema = field(text, "schema")
        .map(|s| s.trim_matches('"'))
        .ok_or_else(|| berr(source, "missing schema tag"))?;
    if schema != SCHEMA {
        return Err(berr(
            source,
            format!("schema {schema:?} (expected {SCHEMA:?})"),
        ));
    }
    let arr_start = text
        .find("\"records\"")
        .ok_or_else(|| berr(source, "missing records array"))?;
    let open = text[arr_start..]
        .find('[')
        .ok_or_else(|| berr(source, "missing records array"))?;
    let arr = &text[arr_start + open + 1..];
    let arr = &arr[..arr
        .rfind(']')
        .ok_or_else(|| berr(source, "unterminated records array"))?];
    let mut records = Vec::new();
    let mut rest = arr;
    while let Some(obj_open) = rest.find('{') {
        let Some(close) = rest[obj_open..].find('}') else {
            return Err(berr(
                source,
                format!("unterminated record object after index {}", records.len()),
            ));
        };
        let obj = &rest[obj_open..obj_open + close + 1];
        let r = parse_record(obj)
            .map_err(|detail| berr(source, format!("record {}: {detail}", records.len())))?;
        records.push(r);
        rest = &rest[obj_open + close + 1..];
    }
    Ok(records)
}

/// Reads the baseline at `path`. A file that does not exist yet is an
/// empty baseline (first run); anything else that fails is an error.
///
/// # Errors
///
/// Returns [`OmenError::InvalidBaseline`] when the file exists but cannot
/// be read, or fails any [`from_json`] validation.
pub fn read_records(path: &Path) -> OmenResult<Vec<SchedRecord>> {
    let source = path.display().to_string();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(berr(&source, format!("cannot read baseline: {e}"))),
    };
    from_json(&source, &text)
}

/// Merges `fresh` into the baseline at `path`: records with a matching
/// `(case, schedule, ranks)` key are replaced, everything else is kept,
/// and the result is written back sorted by that key. Replace-by-key plus
/// the total sort make the merge idempotent: merging the same records
/// twice, in any input order, yields byte-identical documents.
///
/// # Errors
///
/// Returns [`OmenError::InvalidBaseline`] when the existing baseline is
/// unreadable or fails validation (it is left untouched rather than
/// clobbered), or when the merged document cannot be written.
pub fn merge_records(path: &Path, fresh: &[SchedRecord]) -> OmenResult<()> {
    let mut all = read_records(path)?;
    for r in fresh {
        all.retain(|e| {
            (e.case.as_str(), e.schedule.as_str(), e.ranks)
                != (r.case.as_str(), r.schedule.as_str(), r.ranks)
        });
        all.push(r.clone());
    }
    all.sort_by(|a, b| {
        (a.case.as_str(), a.schedule.as_str(), a.ranks).cmp(&(
            b.case.as_str(),
            b.schedule.as_str(),
            b.ranks,
        ))
    });
    std::fs::write(path, to_json(&all)).map_err(|e| {
        berr(
            &path.display().to_string(),
            format!("cannot write baseline: {e}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(case: &str, schedule: &str, ranks: usize, imb: f64) -> SchedRecord {
        SchedRecord {
            case: case.into(),
            schedule: schedule.into(),
            ranks,
            units: 64,
            wall_s: 0.25,
            imbalance: imb,
            reissued: 0,
        }
    }

    #[test]
    fn roundtrip() {
        let records = vec![
            rec("edge", "static", 4, 2.59),
            rec("edge", "dynamic", 4, 1.1),
        ];
        let parsed = from_json("test", &to_json(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn wrong_schema_is_a_clear_error() {
        match from_json("doc", "{\"schema\": \"omen-bench-sched-v9\"}") {
            Err(OmenError::InvalidBaseline { path, detail }) => {
                assert_eq!(path, "doc");
                assert!(detail.contains("omen-bench-sched-v9"), "{detail}");
                assert!(detail.contains(SCHEMA), "{detail}");
            }
            other => panic!("expected InvalidBaseline, got {other:?}"),
        }
        assert!(matches!(
            from_json("doc", ""),
            Err(OmenError::InvalidBaseline { .. })
        ));
    }

    #[test]
    fn malformed_records_are_errors_not_omissions() {
        let doc = format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"records\": [\n    \
             {{\"case\": \"edge\", \"schedule\": \"static\", \"ranks\": 4, \
             \"units\": 64, \"wall_s\": 2.0e-1, \"imbalance\": \"broken\", \
             \"reissued\": 0}}\n  ]\n}}\n"
        );
        match from_json("doc", &doc) {
            Err(OmenError::InvalidBaseline { detail, .. }) => {
                assert!(detail.contains("record 0"), "{detail}");
                assert!(detail.contains("\"imbalance\""), "{detail}");
            }
            other => panic!("expected InvalidBaseline, got {other:?}"),
        }
    }

    #[test]
    fn merge_is_idempotent_and_order_independent() {
        let dir = std::env::temp_dir().join("omen_bench_sched_json_idem_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idem.json");
        let _ = std::fs::remove_file(&path);
        let records = vec![
            rec("edge", "static", 4, 2.5),
            rec("edge", "dynamic", 4, 1.1),
            rec("edge", "dynamic", 3, 1.2),
        ];
        merge_records(&path, &records).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        merge_records(&path, &records).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), first);
        let mut reversed = records.clone();
        reversed.reverse();
        merge_records(&path, &reversed).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), first);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_refuses_to_clobber_an_incompatible_baseline() {
        let dir = std::env::temp_dir().join("omen_bench_sched_json_clobber_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("incompatible.json");
        std::fs::write(
            &path,
            "{\"schema\": \"omen-bench-sched-v9\", \"records\": []}",
        )
        .unwrap();
        let before = std::fs::read_to_string(&path).unwrap();
        let err = merge_records(&path, &[rec("edge", "static", 4, 2.0)]).unwrap_err();
        assert!(matches!(err, OmenError::InvalidBaseline { .. }), "{err}");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            before,
            "a failed merge must leave the existing file untouched"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_replaces_matching_keys_and_sorts() {
        let dir = std::env::temp_dir().join("omen_bench_sched_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merge.json");
        let _ = std::fs::remove_file(&path);
        merge_records(&path, &[rec("edge", "static", 4, 2.0)]).unwrap();
        merge_records(
            &path,
            &[
                rec("edge", "static", 4, 2.5),
                rec("edge", "dynamic", 4, 1.1),
            ],
        )
        .unwrap();
        let all = read_records(&path).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].schedule, "dynamic");
        assert_eq!(all[1].imbalance, 2.5);
        let _ = std::fs::remove_file(&path);
    }
}
