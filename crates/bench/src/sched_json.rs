//! `BENCH_sched.json` — the machine-readable scheduler benchmark baseline.
//!
//! Records load-balance quality of the energy-sweep scheduler on synthetic
//! workloads with a known cost skew: the same unit set is swept once with
//! the static round-robin assignment (`omen_core::parallel::assign`) and
//! once with the dynamic pull-based scheduler (`omen_sched::dynamic_sweep`),
//! and the per-rank busy times are condensed into a load-imbalance ratio
//! (max/mean busy seconds — 1.0 is perfect). Successive PRs compare against
//! the committed baseline instead of against folklore.
//!
//! ## Schema (`omen-bench-sched-v1`)
//!
//! ```json
//! {
//!   "schema": "omen-bench-sched-v1",
//!   "records": [
//!     {"case": "resonance-comb", "schedule": "dynamic", "ranks": 4,
//!      "units": 64, "wall_s": 2.0e-1, "imbalance": 1.08, "reissued": 0}
//!   ]
//! }
//! ```
//!
//! One record per `(case, schedule, ranks)` triple. `imbalance` is the
//! max/mean busy-time ratio over the ranks that actually solved units (the
//! dynamic coordinator only brokers work and is excluded). Merging replaces
//! records with the same key and keeps the rest; the parser is hand-rolled
//! for exactly this schema (the container bakes in no serde), and the
//! writer emits one record per line for reviewable diffs.

use std::path::{Path, PathBuf};

/// One scheduler measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedRecord {
    /// Workload name (`resonance-comb`, ...).
    pub case: String,
    /// `static` or `dynamic`.
    pub schedule: String,
    /// Total ranks in the sweep group (dynamic: one of them coordinates).
    pub ranks: usize,
    /// Work units swept.
    pub units: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_s: f64,
    /// Max/mean busy-seconds ratio over the solving ranks.
    pub imbalance: f64,
    /// Units re-issued by the dynamic scheduler (0 for static).
    pub reissued: usize,
}

/// Identifier of the only document layout this module reads and writes.
pub const SCHEMA: &str = "omen-bench-sched-v1";

/// Default baseline location: `BENCH_sched.json` at the workspace root.
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sched.json")
}

fn fmt_record(r: &SchedRecord) -> String {
    format!(
        "    {{\"case\": \"{}\", \"schedule\": \"{}\", \"ranks\": {}, \"units\": {}, \"wall_s\": {:.4e}, \"imbalance\": {:.3}, \"reissued\": {}}}",
        r.case, r.schedule, r.ranks, r.units, r.wall_s, r.imbalance, r.reissued
    )
}

/// Serializes `records` as a full document.
pub fn to_json(records: &[SchedRecord]) -> String {
    let body: Vec<String> = records.iter().map(fmt_record).collect();
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"records\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

/// Extracts the raw text of `"key": <value>` from one record object.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let at = obj.find(&tag)? + tag.len();
    let rest = obj[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn parse_record(obj: &str) -> Option<SchedRecord> {
    Some(SchedRecord {
        case: field(obj, "case")?.trim_matches('"').to_string(),
        schedule: field(obj, "schedule")?.trim_matches('"').to_string(),
        ranks: field(obj, "ranks")?.parse().ok()?,
        units: field(obj, "units")?.parse().ok()?,
        wall_s: field(obj, "wall_s")?.parse().ok()?,
        imbalance: field(obj, "imbalance")?.parse().ok()?,
        reissued: field(obj, "reissued")?.parse().ok()?,
    })
}

/// Parses a document produced by [`to_json`]. Returns `None` when the text
/// is not an `omen-bench-sched-v1` document; records that fail to parse
/// individually are skipped.
pub fn from_json(text: &str) -> Option<Vec<SchedRecord>> {
    if !text.contains(SCHEMA) {
        return None;
    }
    let arr_start = text.find("\"records\"")?;
    let arr = &text[text[arr_start..].find('[')? + arr_start + 1..];
    let arr = &arr[..arr.rfind(']')?];
    let mut records = Vec::new();
    let mut rest = arr;
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        if let Some(r) = parse_record(&rest[open..open + close + 1]) {
            records.push(r);
        }
        rest = &rest[open + close + 1..];
    }
    Some(records)
}

/// Reads the baseline at `path`; empty when absent or unreadable.
pub fn read_records(path: &Path) -> Vec<SchedRecord> {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|t| from_json(&t))
        .unwrap_or_default()
}

/// Merges `fresh` into the baseline at `path`: records with a matching
/// `(case, schedule, ranks)` key are replaced, everything else is kept,
/// and the result is written back sorted by that key.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be written.
pub fn merge_records(path: &Path, fresh: &[SchedRecord]) -> std::io::Result<()> {
    let mut all = read_records(path);
    for r in fresh {
        all.retain(|e| {
            (e.case.as_str(), e.schedule.as_str(), e.ranks)
                != (r.case.as_str(), r.schedule.as_str(), r.ranks)
        });
        all.push(r.clone());
    }
    all.sort_by(|a, b| {
        (a.case.as_str(), a.schedule.as_str(), a.ranks).cmp(&(
            b.case.as_str(),
            b.schedule.as_str(),
            b.ranks,
        ))
    });
    std::fs::write(path, to_json(&all))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(case: &str, schedule: &str, ranks: usize, imb: f64) -> SchedRecord {
        SchedRecord {
            case: case.into(),
            schedule: schedule.into(),
            ranks,
            units: 64,
            wall_s: 0.25,
            imbalance: imb,
            reissued: 0,
        }
    }

    #[test]
    fn roundtrip() {
        let records = vec![
            rec("edge", "static", 4, 2.59),
            rec("edge", "dynamic", 4, 1.1),
        ];
        let parsed = from_json(&to_json(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn wrong_schema_rejected() {
        assert!(from_json("{\"schema\": \"something-else\"}").is_none());
        assert!(from_json("").is_none());
    }

    #[test]
    fn merge_replaces_matching_keys_and_sorts() {
        let dir = std::env::temp_dir().join("omen_bench_sched_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merge.json");
        let _ = std::fs::remove_file(&path);
        merge_records(&path, &[rec("edge", "static", 4, 2.0)]).unwrap();
        merge_records(
            &path,
            &[
                rec("edge", "static", 4, 2.5),
                rec("edge", "dynamic", 4, 1.1),
            ],
        )
        .unwrap();
        let all = read_records(&path);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].schedule, "dynamic");
        assert_eq!(all[1].imbalance, 2.5);
        let _ = std::fs::remove_file(&path);
    }
}
