//! Blocking client for the serve protocol, used by the `serve_client`
//! CLI, the integration tests, and the service benchmark.

use crate::protocol::{
    decode_result, read_frame, Disposition, Frame, Progress, StatsSnapshot, SweepResult,
};
use omen_num::{OmenError, OmenResult};
use std::io::Write;
use std::net::TcpStream;

fn cerr(context: &'static str, detail: String) -> OmenError {
    OmenError::Protocol { context, detail }
}

/// The terminal outcome of one submitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// How the submission was admitted.
    pub disposition: Disposition,
    /// Content address the server computed for the request.
    pub cache_key: u128,
    /// Progress frames received, in order.
    pub progress: Vec<Progress>,
    /// Whether the final payload came from the cache.
    pub cache_hit: bool,
    /// Raw result payload (bit-identical across cache hits).
    pub payload: Vec<u8>,
}

impl JobOutcome {
    /// Decodes the payload into a typed [`SweepResult`].
    ///
    /// # Errors
    ///
    /// [`OmenError::Protocol`] when the payload is malformed.
    pub fn result(&self) -> OmenResult<SweepResult> {
        decode_result(&self.payload)
    }
}

/// One blocking connection to a serve daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7171`).
    ///
    /// # Errors
    ///
    /// [`OmenError::Protocol`] when the connection cannot be made.
    pub fn connect(addr: &str) -> OmenResult<Client> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| cerr("connect", format!("cannot connect to {addr}: {e}")))?;
        // Frames are small and latency-bound: Nagle + delayed ACK would
        // add ~40 ms to every submit/response round trip.
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    fn send(&mut self, frame: &Frame) -> OmenResult<()> {
        self.stream
            .write_all(&frame.encode())
            .map_err(|e| cerr("send", format!("write failed: {e}")))
    }

    fn recv(&mut self) -> OmenResult<Frame> {
        match read_frame(&mut self.stream)? {
            Some(f) => Ok(f),
            None => Err(cerr(
                "recv",
                "server closed the connection mid-conversation".to_string(),
            )),
        }
    }

    /// Round-trips a `Ping`.
    ///
    /// # Errors
    ///
    /// [`OmenError::Protocol`] on transport failure or a non-`Pong`
    /// reply.
    pub fn ping(&mut self) -> OmenResult<()> {
        self.send(&Frame::Ping)?;
        match self.recv()? {
            Frame::Pong => Ok(()),
            other => Err(cerr("recv", format!("expected Pong, got {other:?}"))),
        }
    }

    /// Fetches the server's load/health counters.
    ///
    /// # Errors
    ///
    /// [`OmenError::Protocol`] on transport failure or an unexpected
    /// reply.
    pub fn stats(&mut self) -> OmenResult<StatsSnapshot> {
        self.send(&Frame::Stats)?;
        match self.recv()? {
            Frame::StatsReply(s) => Ok(s),
            other => Err(cerr("recv", format!("expected StatsReply, got {other:?}"))),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// [`OmenError::Protocol`] on transport failure or an unexpected
    /// reply.
    pub fn shutdown(&mut self) -> OmenResult<()> {
        self.send(&Frame::Shutdown)?;
        match self.recv()? {
            Frame::ShutdownAck => Ok(()),
            other => Err(cerr("recv", format!("expected ShutdownAck, got {other:?}"))),
        }
    }

    /// Submits a request and streams it to completion, invoking
    /// `on_progress` per progress frame.
    ///
    /// # Errors
    ///
    /// [`OmenError::Protocol`] on transport failure or a server
    /// `Reject`; [`OmenError::Busy`] when the server queue is full;
    /// [`OmenError::RankFailed`] (rendered by the server) surfaces as
    /// [`OmenError::Protocol`] with the server's failure text.
    pub fn submit(
        &mut self,
        request_text: &str,
        on_progress: &mut dyn FnMut(&Progress),
    ) -> OmenResult<JobOutcome> {
        self.send(&Frame::Submit(request_text.to_string()))?;
        let (disposition, cache_key) = match self.recv()? {
            Frame::Accepted {
                cache_key,
                disposition,
                ..
            } => (disposition, cache_key),
            Frame::Busy {
                queue_depth,
                capacity,
            } => {
                return Err(OmenError::Busy {
                    queue_depth: queue_depth as usize,
                    capacity: capacity as usize,
                })
            }
            Frame::Reject(msg) => return Err(cerr("submit", format!("rejected: {msg}"))),
            other => return Err(cerr("submit", format!("unexpected reply {other:?}"))),
        };
        let mut progress = Vec::new();
        loop {
            match self.recv()? {
                Frame::Progress(p) => {
                    on_progress(&p);
                    progress.push(p);
                }
                Frame::Done { cache_hit, payload } => {
                    return Ok(JobOutcome {
                        disposition,
                        cache_key,
                        progress,
                        cache_hit,
                        payload,
                    })
                }
                Frame::JobFailed(detail) => {
                    return Err(cerr("job", format!("job failed: {detail}")))
                }
                other => return Err(cerr("stream", format!("unexpected frame {other:?}"))),
            }
        }
    }

    /// [`Client::submit`] without progress reporting.
    ///
    /// # Errors
    ///
    /// As for [`Client::submit`].
    pub fn submit_and_wait(&mut self, request_text: &str) -> OmenResult<JobOutcome> {
        self.submit(request_text, &mut |_| {})
    }
}
