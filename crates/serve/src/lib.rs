//! # omen-serve — device simulation as a service
//!
//! Runs the OMEN solver stack as a long-lived daemon: clients submit
//! device + bias-sweep jobs over a hand-rolled, length-prefix-framed,
//! versioned TCP protocol (no external dependencies — house style),
//! stream typed per-point progress, and receive a serialized sweep
//! result. The server canonicalizes every request, dedupes identical
//! in-flight jobs, serves repeats bit-identically from a
//! content-addressed cache, and multiplexes all clients onto one shared
//! worker pool with per-connection fair share and a bounded queue
//! (typed `Busy` on overflow — never a silent drop).
//!
//! Layers:
//!
//! - [`protocol`] — frame grammar, codec, result serialization.
//! - [`request`] — `key = value` request parsing, validation,
//!   canonicalization, and the 128-bit content address.
//! - [`server`] — admission, queueing, dedupe, cache, worker pool,
//!   graceful drain.
//! - [`client`] — a blocking client for CLIs, tests, and benches.
//! - [`hash`] — the dependency-free FNV-1a 128 digest.
//!
//! Wire format, cache-key definition, fair-share policy, and shutdown
//! semantics are specified in DESIGN.md §14.

pub mod client;
pub mod hash;
pub mod protocol;
pub mod request;
pub mod server;

pub use client::{Client, JobOutcome};
pub use protocol::{Disposition, Frame, Progress, StatsSnapshot, SweepResult};
pub use request::{Mode, SweepRequest};
pub use server::{solver_executor, Executor, Server, ServerConfig};

/// Emits one `OMEN_LOG`-gated progress line through the sanctioned
/// core sink (libraries stay silent unless `OMEN_LOG` is on).
pub(crate) fn log_line(line: &str) {
    omen_core::log::emit(line);
}
