//! Length-prefix-framed, versioned wire protocol.
//!
//! Every message is one frame:
//!
//! ```text
//! magic  4 B   b"OMSV"
//! ver    2 B   u16 LE, currently 2
//! kind   1 B   frame discriminant
//! len    4 B   u32 LE payload length, <= 16 MiB
//! body   len B kind-specific payload (all integers LE, floats as
//!              IEEE-754 bit patterns)
//! ```
//!
//! The decoder is total: truncated headers, bad magic, unsupported
//! versions, unknown kinds, oversized lengths, short payloads, and
//! trailing payload bytes all come back as typed
//! [`OmenError::Protocol`] values — never a panic, never a hang on a
//! closed socket. A connection that closes *between* frames is a clean
//! end-of-stream (`Ok(None)`); closing *inside* a frame is a protocol
//! error, because the peer died mid-sentence.

use omen_num::{OmenError, OmenResult, SweepReport};
use std::io::Read;

/// Frame magic: "OMSV" (OMen SerVe).
pub const MAGIC: [u8; 4] = *b"OMSV";
/// Current protocol version. Version 2 added `cache_evictions` to the
/// `StatsReply` payload when the result cache became a bounded LRU.
pub const VERSION: u16 = 2;
/// Maximum payload bytes one frame may carry.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;
/// Fixed header size (magic + version + kind + length).
pub const HEADER_LEN: usize = 11;

/// How a submitted job was admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// A fresh solve was queued.
    Fresh,
    /// Joined an identical job already queued or running.
    Joined,
    /// Served from the result cache; `Done` follows immediately.
    Cached,
}

/// One per-point progress observation, as carried on the wire. The
/// cumulative [`SweepReport`] counters cover the sweep *so far* (up to
/// and including this point), so the last progress frame of a job must
/// agree with the totals embedded in the final result payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Progress {
    /// Monotonic per-sweep sequence number (gapless from 0).
    pub seq: u64,
    /// Bias-point index in the requested grid.
    pub index: u64,
    /// Total bias points in the sweep.
    pub total: u64,
    /// Gate voltage of this point (V).
    pub v_gate: f64,
    /// Drain voltage of this point (V).
    pub v_ds: f64,
    /// Drain current of this point (µA).
    pub current_ua: f64,
    /// SCF iterations spent on this point.
    pub scf_iters: u64,
    /// Whether this point converged.
    pub converged: bool,
    /// Energy points solved so far (cumulative).
    pub solved: u64,
    /// Retries so far (cumulative).
    pub retried: u64,
    /// Recovered points so far (cumulative).
    pub recovered: u64,
    /// Failed points so far (cumulative).
    pub failed: u64,
}

/// Server load/health counters returned by `Stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs admitted (fresh + joined + cached).
    pub jobs_accepted: u64,
    /// Submissions rejected with `Busy`.
    pub busy_rejections: u64,
    /// Fresh solves actually started by a worker (the dedupe witness:
    /// identical concurrent submissions bump this once).
    pub solves_started: u64,
    /// Submissions answered from the result cache.
    pub cache_hits: u64,
    /// Submissions that joined an in-flight identical job.
    pub dedupe_joins: u64,
    /// Finished results evicted from the bounded LRU cache to stay
    /// within the byte budget.
    pub cache_evictions: u64,
    /// Jobs currently queued.
    pub queued: u64,
    /// Jobs currently being solved.
    pub running: u64,
}

/// Every protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    // ----- client → server -----
    /// Submit a sweep job; payload is `key = value` request text.
    Submit(String),
    /// Liveness probe.
    Ping,
    /// Request a [`StatsSnapshot`].
    Stats,
    /// Ask the server to drain in-flight work and exit.
    Shutdown,

    // ----- server → client -----
    /// Job admitted; identifies it and says how it was admitted.
    Accepted {
        /// Server-assigned job id.
        job_id: u64,
        /// Content-address of the canonical request.
        cache_key: u128,
        /// How the job was admitted.
        disposition: Disposition,
    },
    /// Queue at capacity; retry with backoff.
    Busy {
        /// Jobs currently queued.
        queue_depth: u64,
        /// Queue capacity.
        capacity: u64,
    },
    /// Request refused (malformed, unknown keys, draining, …).
    Reject(String),
    /// One per-point progress observation.
    Progress(Progress),
    /// Job finished; payload is the serialized sweep result.
    Done {
        /// Whether the payload came from the result cache.
        cache_hit: bool,
        /// Serialized result (see [`SweepResult`]).
        payload: Vec<u8>,
    },
    /// Job failed with a typed solver error (rendered).
    JobFailed(String),
    /// Reply to `Stats`.
    StatsReply(StatsSnapshot),
    /// Reply to `Ping`.
    Pong,
    /// Reply to `Shutdown`: drain has begun.
    ShutdownAck,
}

const K_SUBMIT: u8 = 1;
const K_PING: u8 = 2;
const K_STATS: u8 = 3;
const K_SHUTDOWN: u8 = 4;
const K_ACCEPTED: u8 = 16;
const K_BUSY: u8 = 17;
const K_REJECT: u8 = 18;
const K_PROGRESS: u8 = 19;
const K_DONE: u8 = 20;
const K_JOB_FAILED: u8 = 21;
const K_STATS_REPLY: u8 = 22;
const K_PONG: u8 = 23;
const K_SHUTDOWN_ACK: u8 = 24;

fn perr(context: &'static str, detail: String) -> OmenError {
    OmenError::Protocol { context, detail }
}

// ---------------------------------------------------------------- encode

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Submit(_) => K_SUBMIT,
            Frame::Ping => K_PING,
            Frame::Stats => K_STATS,
            Frame::Shutdown => K_SHUTDOWN,
            Frame::Accepted { .. } => K_ACCEPTED,
            Frame::Busy { .. } => K_BUSY,
            Frame::Reject(_) => K_REJECT,
            Frame::Progress(_) => K_PROGRESS,
            Frame::Done { .. } => K_DONE,
            Frame::JobFailed(_) => K_JOB_FAILED,
            Frame::StatsReply(_) => K_STATS_REPLY,
            Frame::Pong => K_PONG,
            Frame::ShutdownAck => K_SHUTDOWN_ACK,
        }
    }

    /// Serializes the frame (header + payload) into wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Frame::Submit(text) => e.bytes(text.as_bytes()),
            Frame::Reject(msg) | Frame::JobFailed(msg) => e.bytes(msg.as_bytes()),
            Frame::Ping | Frame::Stats | Frame::Shutdown | Frame::Pong | Frame::ShutdownAck => {}
            Frame::Accepted {
                job_id,
                cache_key,
                disposition,
            } => {
                e.u64(*job_id);
                e.u128(*cache_key);
                e.u8(match disposition {
                    Disposition::Fresh => 0,
                    Disposition::Joined => 1,
                    Disposition::Cached => 2,
                });
            }
            Frame::Busy {
                queue_depth,
                capacity,
            } => {
                e.u64(*queue_depth);
                e.u64(*capacity);
            }
            Frame::Progress(p) => {
                e.u64(p.seq);
                e.u64(p.index);
                e.u64(p.total);
                e.f64(p.v_gate);
                e.f64(p.v_ds);
                e.f64(p.current_ua);
                e.u64(p.scf_iters);
                e.u8(u8::from(p.converged));
                e.u64(p.solved);
                e.u64(p.retried);
                e.u64(p.recovered);
                e.u64(p.failed);
            }
            Frame::Done { cache_hit, payload } => {
                e.u8(u8::from(*cache_hit));
                e.bytes(payload);
            }
            Frame::StatsReply(s) => {
                e.u64(s.jobs_accepted);
                e.u64(s.busy_rejections);
                e.u64(s.solves_started);
                e.u64(s.cache_hits);
                e.u64(s.dedupe_joins);
                e.u64(s.cache_evictions);
                e.u64(s.queued);
                e.u64(s.running);
            }
        }
        let payload = e.buf;
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.kind());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

// ---------------------------------------------------------------- decode

/// Strict little-endian payload reader: short reads and leftover bytes
/// are protocol errors.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8], context: &'static str) -> Dec<'a> {
        Dec {
            buf,
            pos: 0,
            context,
        }
    }
    fn take(&mut self, n: usize) -> OmenResult<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(perr(
                self.context,
                format!(
                    "payload truncated: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len()
                ),
            )),
        }
    }
    fn u8(&mut self) -> OmenResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> OmenResult<u64> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }
    fn u128(&mut self) -> OmenResult<u128> {
        let mut b = [0u8; 16];
        b.copy_from_slice(self.take(16)?);
        Ok(u128::from_le_bytes(b))
    }
    fn f64(&mut self) -> OmenResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
    fn finish(self) -> OmenResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(perr(
                self.context,
                format!("{} trailing payload bytes", self.buf.len() - self.pos),
            ))
        }
    }
}

fn utf8(bytes: &[u8], context: &'static str) -> OmenResult<String> {
    String::from_utf8(bytes.to_vec())
        .map_err(|_| perr(context, "payload is not valid UTF-8".to_string()))
}

fn decode_payload(kind: u8, payload: &[u8]) -> OmenResult<Frame> {
    let ctx: &'static str = "frame payload";
    let mut d = Dec::new(payload, ctx);
    let frame = match kind {
        K_SUBMIT => Frame::Submit(utf8(d.rest(), ctx)?),
        K_PING => Frame::Ping,
        K_STATS => Frame::Stats,
        K_SHUTDOWN => Frame::Shutdown,
        K_ACCEPTED => {
            let job_id = d.u64()?;
            let cache_key = d.u128()?;
            let disposition = match d.u8()? {
                0 => Disposition::Fresh,
                1 => Disposition::Joined,
                2 => Disposition::Cached,
                b => return Err(perr(ctx, format!("unknown disposition byte {b}"))),
            };
            Frame::Accepted {
                job_id,
                cache_key,
                disposition,
            }
        }
        K_BUSY => Frame::Busy {
            queue_depth: d.u64()?,
            capacity: d.u64()?,
        },
        K_REJECT => Frame::Reject(utf8(d.rest(), ctx)?),
        K_PROGRESS => Frame::Progress(Progress {
            seq: d.u64()?,
            index: d.u64()?,
            total: d.u64()?,
            v_gate: d.f64()?,
            v_ds: d.f64()?,
            current_ua: d.f64()?,
            scf_iters: d.u64()?,
            converged: d.u8()? != 0,
            solved: d.u64()?,
            retried: d.u64()?,
            recovered: d.u64()?,
            failed: d.u64()?,
        }),
        K_DONE => {
            let cache_hit = d.u8()? != 0;
            let payload = d.rest().to_vec();
            Frame::Done { cache_hit, payload }
        }
        K_JOB_FAILED => Frame::JobFailed(utf8(d.rest(), ctx)?),
        K_STATS_REPLY => Frame::StatsReply(StatsSnapshot {
            jobs_accepted: d.u64()?,
            busy_rejections: d.u64()?,
            solves_started: d.u64()?,
            cache_hits: d.u64()?,
            dedupe_joins: d.u64()?,
            cache_evictions: d.u64()?,
            queued: d.u64()?,
            running: d.u64()?,
        }),
        K_PONG => Frame::Pong,
        K_SHUTDOWN_ACK => Frame::ShutdownAck,
        k => return Err(perr("frame header", format!("unknown frame kind {k}"))),
    };
    d.finish()?;
    Ok(frame)
}

/// Reads exactly `buf.len()` bytes, distinguishing "closed before any
/// byte" (`Ok(false)`) from "closed mid-read" (typed error).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8], context: &'static str) -> OmenResult<bool> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(false);
                }
                return Err(perr(
                    context,
                    format!(
                        "connection closed mid-frame: got {got} of {} bytes",
                        buf.len()
                    ),
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(perr(context, format!("read failed: {e}"))),
        }
    }
    Ok(true)
}

/// Reads one frame from the stream.
///
/// Returns `Ok(None)` on a clean close (end-of-stream on a frame
/// boundary).
///
/// # Errors
///
/// [`OmenError::Protocol`] on bad magic, an unsupported version, an
/// unknown kind, a length prefix beyond [`MAX_FRAME`], a connection
/// closed mid-frame, an I/O failure, or a malformed payload.
pub fn read_frame(r: &mut impl Read) -> OmenResult<Option<Frame>> {
    let mut header = [0u8; HEADER_LEN];
    if !read_exact_or_eof(r, &mut header, "frame header")? {
        return Ok(None);
    }
    if header[0..4] != MAGIC {
        return Err(perr(
            "frame header",
            format!(
                "bad magic 0x{:02x}{:02x}{:02x}{:02x} (want \"OMSV\")",
                header[0], header[1], header[2], header[3]
            ),
        ));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(perr(
            "frame header",
            format!("unsupported protocol version {version} (this build speaks {VERSION})"),
        ));
    }
    let kind = header[6];
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]);
    if len > MAX_FRAME {
        return Err(perr(
            "frame header",
            format!("length prefix {len} exceeds the {MAX_FRAME}-byte frame cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_exact_or_eof(r, &mut payload, "frame payload")? && len > 0 {
        return Err(perr(
            "frame payload",
            format!("connection closed before {len}-byte payload"),
        ));
    }
    decode_payload(kind, &payload).map(Some)
}

// ------------------------------------------------------------- results

/// A decoded sweep result: the I–V points plus the final fault-ledger
/// totals of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// (v_gate, v_ds, current_ua, scf_iterations, converged) per point.
    pub points: Vec<(f64, f64, f64, u64, bool)>,
    /// Total energy points solved.
    pub solved: u64,
    /// Total retries.
    pub retried: u64,
    /// Total recovered points.
    pub recovered: u64,
    /// Total failed points.
    pub failed: u64,
}

/// Serializes a solved sweep into the `Done` payload bytes. The
/// encoding is canonical (pure little-endian function of the inputs),
/// so a cache hit is bit-identical to the original solve's payload.
pub fn encode_result(points: &[omen_core::iv::IvPoint], report: &SweepReport) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(points.len() as u64);
    for p in points {
        e.f64(p.v_gate);
        e.f64(p.v_ds);
        e.f64(p.current_ua);
        e.u64(p.scf_iterations as u64);
        e.u8(u8::from(p.converged));
    }
    e.u64(report.solved as u64);
    e.u64(report.retried as u64);
    e.u64(report.recovered as u64);
    e.u64(report.failed.len() as u64);
    e.buf
}

/// Decodes a `Done` payload.
///
/// # Errors
///
/// [`OmenError::Protocol`] on truncation or trailing bytes.
pub fn decode_result(payload: &[u8]) -> OmenResult<SweepResult> {
    let ctx: &'static str = "result payload";
    let mut d = Dec::new(payload, ctx);
    let n = d.u64()?;
    if n > u64::from(MAX_FRAME) / 33 {
        return Err(perr(ctx, format!("implausible point count {n}")));
    }
    let mut points = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let v_gate = d.f64()?;
        let v_ds = d.f64()?;
        let current_ua = d.f64()?;
        let iters = d.u64()?;
        let converged = d.u8()? != 0;
        points.push((v_gate, v_ds, current_ua, iters, converged));
    }
    let out = SweepResult {
        points,
        solved: d.u64()?,
        retried: d.u64()?,
        recovered: d.u64()?,
        failed: d.u64()?,
    };
    d.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(f: &Frame) -> Frame {
        let bytes = f.encode();
        let mut cur = Cursor::new(bytes);
        let got = read_frame(&mut cur)
            .expect("decodes")
            .expect("one frame present");
        // And the stream is exactly one frame long.
        assert!(read_frame(&mut cur).expect("clean close").is_none());
        got
    }

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Submit("vds = 0.2\n".to_string()),
            Frame::Ping,
            Frame::Stats,
            Frame::Shutdown,
            Frame::Accepted {
                job_id: 42,
                cache_key: 0xdead_beef_dead_beef_dead_beef_dead_beef,
                disposition: Disposition::Joined,
            },
            Frame::Busy {
                queue_depth: 64,
                capacity: 64,
            },
            Frame::Reject("unknown key `materiall`".to_string()),
            Frame::Progress(Progress {
                seq: 3,
                index: 3,
                total: 9,
                v_gate: -0.25,
                v_ds: 0.2,
                current_ua: 1.25e-3,
                scf_iters: 7,
                converged: true,
                solved: 124,
                retried: 2,
                recovered: 1,
                failed: 1,
            }),
            Frame::Done {
                cache_hit: true,
                payload: vec![1, 2, 3, 4, 5],
            },
            Frame::JobFailed("singular block at slab 3".to_string()),
            Frame::StatsReply(StatsSnapshot {
                jobs_accepted: 10,
                busy_rejections: 2,
                solves_started: 4,
                cache_hits: 3,
                dedupe_joins: 3,
                cache_evictions: 5,
                queued: 1,
                running: 2,
            }),
            Frame::Pong,
            Frame::ShutdownAck,
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for f in all_frames() {
            assert_eq!(roundtrip(&f), f);
        }
    }

    fn expect_protocol(bytes: &[u8]) -> String {
        match read_frame(&mut Cursor::new(bytes.to_vec())) {
            Err(OmenError::Protocol { context, detail }) => format!("{context}: {detail}"),
            other => panic!("wanted a Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn robustness_truncated_header() {
        // Cut the header at every interior offset: each is "closed
        // mid-frame", never a hang or panic.
        let full = Frame::Ping.encode();
        for cut in 1..HEADER_LEN {
            let msg = expect_protocol(&full[..cut]);
            assert!(msg.contains("mid-frame"), "cut {cut}: {msg}");
        }
    }

    #[test]
    fn robustness_mid_payload_disconnect() {
        let full = Frame::Submit("material = si_sp3s\n".to_string()).encode();
        for cut in HEADER_LEN + 1..full.len() {
            let msg = expect_protocol(&full[..cut]);
            assert!(msg.contains("mid-frame"), "cut {cut}: {msg}");
        }
        // Header complete but zero payload bytes delivered.
        let msg = expect_protocol(&full[..HEADER_LEN]);
        assert!(msg.contains("payload"), "{msg}");
    }

    #[test]
    fn robustness_garbage_magic_and_version() {
        let mut bad_magic = Frame::Ping.encode();
        bad_magic[0] = b'X';
        assert!(expect_protocol(&bad_magic).contains("bad magic"));

        let mut bad_version = Frame::Ping.encode();
        bad_version[4] = 0xff;
        bad_version[5] = 0xff;
        assert!(expect_protocol(&bad_version).contains("unsupported protocol version"));
    }

    #[test]
    fn robustness_oversized_length_prefix() {
        let mut huge = Frame::Ping.encode();
        huge[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        let msg = expect_protocol(&huge);
        assert!(msg.contains("frame cap"), "{msg}");
    }

    #[test]
    fn robustness_unknown_kind_and_trailing_bytes() {
        let mut unknown = Frame::Ping.encode();
        unknown[6] = 0x7f;
        assert!(expect_protocol(&unknown).contains("unknown frame kind"));

        // A Pong with a stray payload byte.
        let mut trailing = Frame::Pong.encode();
        trailing[7..11].copy_from_slice(&1u32.to_le_bytes());
        trailing.push(0);
        assert!(expect_protocol(&trailing).contains("trailing"));
    }

    #[test]
    fn robustness_truncated_typed_payload() {
        // An Accepted frame whose payload is one byte short: shrink both
        // the body and the length prefix so the *decoder* (not the frame
        // reader) must catch it.
        let ok = Frame::Accepted {
            job_id: 1,
            cache_key: 2,
            disposition: Disposition::Fresh,
        }
        .encode();
        let mut short = ok.clone();
        short.pop();
        let plen = (ok.len() - HEADER_LEN - 1) as u32;
        short[7..11].copy_from_slice(&plen.to_le_bytes());
        assert!(expect_protocol(&short).contains("truncated"));
    }

    #[test]
    fn robustness_non_utf8_submit() {
        let mut f = Frame::Submit(String::new()).encode();
        f[7..11].copy_from_slice(&2u32.to_le_bytes());
        f.extend_from_slice(&[0xff, 0xfe]);
        assert!(expect_protocol(&f).contains("UTF-8"));
    }

    #[test]
    fn empty_stream_is_a_clean_close() {
        assert!(read_frame(&mut Cursor::new(Vec::new()))
            .expect("clean")
            .is_none());
    }

    #[test]
    fn result_payload_round_trips_and_is_canonical() {
        use omen_core::iv::IvPoint;
        let pts = vec![
            IvPoint {
                v_gate: -0.1,
                v_ds: 0.2,
                current_ua: 3.5e-2,
                scf_iterations: 4,
                converged: true,
            },
            IvPoint {
                v_gate: 0.1,
                v_ds: 0.2,
                current_ua: 7.1e-1,
                scf_iterations: 6,
                converged: false,
            },
        ];
        let mut report = SweepReport::default();
        for _ in 0..13 {
            report.record_solved(0);
        }
        let a = encode_result(&pts, &report);
        let b = encode_result(&pts, &report);
        assert_eq!(a, b, "encoding is canonical");
        let dec = decode_result(&a).expect("decodes");
        assert_eq!(dec.points.len(), 2);
        assert_eq!(dec.solved, 13);
        assert_eq!(dec.points[0].0.to_bits(), (-0.1f64).to_bits());
        // Truncated result payload is typed, not a panic.
        match decode_result(&a[..a.len() - 3]) {
            Err(OmenError::Protocol { .. }) => {}
            other => panic!("wanted Protocol, got {other:?}"),
        }
    }
}
