//! Content-addressing hash for canonical sweep requests.
//!
//! The result cache and the in-flight dedupe table key on a 128-bit
//! FNV-1a digest of the request's canonical encoding. FNV-1a is not
//! cryptographic — the cache is a performance layer inside one trusted
//! daemon, not an integrity boundary — but at 128 bits accidental
//! collisions between distinct device specs are out of reach, the
//! function is a dozen lines of dependency-free `u128` arithmetic, and
//! the digest is stable across platforms and releases (no
//! `DefaultHasher` seed drift), so cache keys can be logged, compared
//! across runs, and embedded in the wire protocol.

/// FNV-1a 128-bit offset basis.
const OFFSET_BASIS: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime (2^88 + 2^8 + 0x3b).
const PRIME: u128 = 0x0000000001000000000000000000013b;

/// Incremental FNV-1a 128-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv128 {
    state: u128,
}

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// A hasher initialized to the FNV offset basis.
    pub fn new() -> Fnv128 {
        Fnv128 {
            state: OFFSET_BASIS,
        }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Absorbs a length-delimited string: the byte length is hashed
    /// first so `("ab", "c")` and `("a", "bc")` cannot collide by
    /// concatenation.
    pub fn write_str(&mut self, s: &str) {
        self.write(&(s.len() as u64).to_le_bytes());
        self.write(s.as_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

/// One-shot digest of a byte slice.
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = Fnv128::new();
    h.write(bytes);
    h.finish()
}

/// Renders a digest as 32 lowercase hex digits (the wire/log form).
pub fn hex128(digest: u128) -> String {
    format!("{digest:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(fnv128(b""), OFFSET_BASIS);
    }

    #[test]
    fn digest_is_deterministic_and_incremental() {
        let whole = fnv128(b"omen serve cache key");
        let mut split = Fnv128::new();
        split.write(b"omen serve ");
        split.write(b"cache key");
        assert_eq!(whole, split.finish());
        assert_eq!(whole, fnv128(b"omen serve cache key"));
    }

    #[test]
    fn single_byte_change_changes_digest() {
        assert_ne!(fnv128(b"vds = 0.2"), fnv128(b"vds = 0.3"));
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
        assert_ne!(fnv128(b""), fnv128(b"\0"));
    }

    #[test]
    fn length_delimited_strings_do_not_collide_by_concatenation() {
        let mut a = Fnv128::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv128::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_form_is_32_digits_zero_padded() {
        assert_eq!(hex128(0), "0".repeat(32));
        let h = hex128(fnv128(b"x"));
        assert_eq!(h.len(), 32);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
