//! Sweep-job requests: parsing, validation, canonicalization, cache key.
//!
//! A request travels the wire as the same dependency-free `key = value`
//! text the `omen_cli` spec files use (one pair per line, `#` comments,
//! unknown keys are errors). The server never hashes the raw text:
//! it parses into a typed [`SweepRequest`], validates every field, and
//! hashes a *canonical encoding* — fixed field order, floats reduced to
//! their IEEE-754 bit pattern. Two texts that differ only in key order,
//! comments, whitespace, or float spelling (`0.2` vs `2e-1`) therefore
//! address the same cache entry, while any physical change (one bias
//! point, one k point, a different engine or tolerance-policy version)
//! produces a different key.

use crate::hash::Fnv128;
use omen_core::{Engine, Geometry, TransistorSpec};
use omen_num::{linspace, OmenError, OmenResult};
use omen_tb::Material;
use std::collections::BTreeMap;

/// How the sweep is solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Non-self-consistent frozen-field transfer sweep (fast preview).
    Frozen,
    /// Full self-consistent Schrödinger–Poisson sweep.
    Scf,
}

impl Mode {
    fn token(self) -> &'static str {
        match self {
            Mode::Frozen => "frozen",
            Mode::Scf => "scf",
        }
    }
}

/// A validated, canonical bias-sweep job description.
///
/// Field meanings match the `omen_cli` spec keys one to one; see
/// [`SweepRequest::default_text`] for every key, its default, and its
/// unit.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// Canonical material token (`single_band_<t_meV>`, `si_sp3s`, …).
    pub material: String,
    /// Geometry family token (`nanowire` | `utb` | `ribbon`).
    pub geometry: String,
    /// Cross-section size in nm (dimer count for ribbons).
    pub width: f64,
    /// Device length in principal layers.
    pub slabs: usize,
    /// Source/drain doping (e/nm³).
    pub doping_sd: f64,
    /// p-i-n junction (TFET) instead of n-i-n.
    pub pin: bool,
    /// Solve mode.
    pub mode: Mode,
    /// Transport engine token (`wf` | `rgf` | `selinv`).
    pub engine: String,
    /// Energy points per transport solve.
    pub n_energy: usize,
    /// Transverse k-points.
    pub n_k: usize,
    /// Drain bias (V).
    pub vds: f64,
    /// Source Fermi level (eV).
    pub mu_source: f64,
    /// First gate voltage of the sweep (V).
    pub vg_start: f64,
    /// Last gate voltage of the sweep (V).
    pub vg_stop: f64,
    /// Number of gate-voltage points.
    pub vg_points: usize,
}

/// Every key a request may set, in canonical (hash) order.
const KEYS: &[&str] = &[
    "material",
    "geometry",
    "width",
    "slabs",
    "doping_sd",
    "pin",
    "mode",
    "engine",
    "n_energy",
    "n_k",
    "vds",
    "mu_source",
    "vg_start",
    "vg_stop",
    "vg_points",
];

fn bad(detail: String) -> OmenError {
    OmenError::Protocol {
        context: "request",
        detail,
    }
}

/// Parses `key = value` lines with `#` comments into a map.
fn parse_pairs(text: &str) -> OmenResult<BTreeMap<String, String>> {
    let mut map = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once('=').ok_or_else(|| {
            bad(format!(
                "line {}: expected `key = value`, got `{raw}`",
                lineno + 1
            ))
        })?;
        map.insert(k.trim().to_string(), v.trim().to_string());
    }
    Ok(map)
}

impl SweepRequest {
    /// The default request: every key with its default value, in the
    /// `omen_cli` spec format. A submitted request only needs the keys
    /// it overrides.
    pub fn default_text() -> &'static str {
        "\
material   = single_band_1000   # single_band_<t_meV> | si_sp3s | si_sp3d5s | gaas_sp3s | graphene_pz
geometry   = nanowire           # nanowire | utb | ribbon
width      = 1.0                # nm (nanowire side / utb thickness); dimer count for ribbon
slabs      = 8                  # device length in principal layers
doping_sd  = 2e-3               # source/drain doping, e/nm^3
pin        = false              # true -> p-i-n junction (TFET)
mode       = frozen             # scf | frozen
engine     = wf                 # wf | rgf | selinv
n_energy   = 31                 # energy points per transport solve
n_k        = 1                  # transverse k-points
vds        = 0.2                # drain bias (V)
mu_source  = -3.4               # source Fermi level (eV)
vg_start   = -0.4
vg_stop    = 0.4
vg_points  = 9
"
    }

    /// Parses and validates a request text, filling unset keys from the
    /// defaults.
    ///
    /// # Errors
    ///
    /// [`OmenError::Protocol`] on malformed lines, unknown keys,
    /// unparsable or non-finite numbers, out-of-range sizes, or unknown
    /// material/geometry/engine/mode tokens.
    pub fn parse(text: &str) -> OmenResult<SweepRequest> {
        let defaults = parse_pairs(SweepRequest::default_text())?;
        let user = parse_pairs(text)?;
        for k in user.keys() {
            if !KEYS.contains(&k.as_str()) {
                return Err(bad(format!("unknown key `{k}`")));
            }
        }
        let get = |k: &str| -> &str { user.get(k).unwrap_or(&defaults[k]).as_str() };
        let getf = |k: &str| -> OmenResult<f64> {
            let v: f64 = get(k)
                .parse()
                .map_err(|_| bad(format!("key `{k}`: expected a number, got `{}`", get(k))))?;
            if !v.is_finite() {
                return Err(bad(format!("key `{k}`: must be finite, got `{v}`")));
            }
            Ok(v)
        };
        let getu = |k: &str| -> OmenResult<usize> {
            get(k)
                .parse()
                .map_err(|_| bad(format!("key `{k}`: expected an integer, got `{}`", get(k))))
        };
        let getb = |k: &str| -> OmenResult<bool> {
            match get(k) {
                "true" => Ok(true),
                "false" => Ok(false),
                v => Err(bad(format!("key `{k}`: expected true|false, got `{v}`"))),
            }
        };

        let material = get("material").to_string();
        material_of(&material)?;
        let geometry = get("geometry").to_string();
        if !matches!(geometry.as_str(), "nanowire" | "utb" | "ribbon") {
            return Err(bad(format!("unknown geometry `{geometry}`")));
        }
        let mode = match get("mode") {
            "frozen" => Mode::Frozen,
            "scf" => Mode::Scf,
            m => return Err(bad(format!("unknown mode `{m}`"))),
        };
        let engine = get("engine").to_string();
        engine_of(&engine)?;

        let req = SweepRequest {
            material,
            geometry,
            width: getf("width")?,
            slabs: getu("slabs")?,
            doping_sd: getf("doping_sd")?,
            pin: getb("pin")?,
            mode,
            engine,
            n_energy: getu("n_energy")?,
            n_k: getu("n_k")?,
            vds: getf("vds")?,
            mu_source: getf("mu_source")?,
            vg_start: getf("vg_start")?,
            vg_stop: getf("vg_stop")?,
            vg_points: getu("vg_points")?,
        };
        req.validate()?;
        Ok(req)
    }

    fn validate(&self) -> OmenResult<()> {
        let check = |ok: bool, detail: &str| -> OmenResult<()> {
            if ok {
                Ok(())
            } else {
                Err(bad(detail.to_string()))
            }
        };
        check(self.width > 0.0, "key `width`: must be > 0")?;
        check(
            self.slabs >= 2,
            "key `slabs`: need at least 2 principal layers",
        )?;
        check(
            self.slabs <= 4096,
            "key `slabs`: more than 4096 layers refused",
        )?;
        check(self.n_energy >= 1, "key `n_energy`: need at least 1 point")?;
        check(
            self.n_energy <= 100_000,
            "key `n_energy`: more than 1e5 points refused",
        )?;
        check(self.n_k >= 1, "key `n_k`: need at least 1 k-point")?;
        check(
            self.n_k <= 4096,
            "key `n_k`: more than 4096 k-points refused",
        )?;
        check(
            self.vg_points >= 1,
            "key `vg_points`: need at least 1 point",
        )?;
        check(
            self.vg_points <= 100_000,
            "key `vg_points`: more than 1e5 points refused",
        )?;
        Ok(())
    }

    /// The canonical encoding the cache key hashes: fixed field order,
    /// floats rendered in round-trip form. Also serves as the
    /// human-readable normal form of the job (valid request text).
    pub fn canonical_text(&self) -> String {
        format!(
            "material = {}\ngeometry = {}\nwidth = {:?}\nslabs = {}\ndoping_sd = {:?}\n\
             pin = {}\nmode = {}\nengine = {}\nn_energy = {}\nn_k = {}\nvds = {:?}\n\
             mu_source = {:?}\nvg_start = {:?}\nvg_stop = {:?}\nvg_points = {}\n",
            self.material,
            self.geometry,
            self.width,
            self.slabs,
            self.doping_sd,
            self.pin,
            self.mode.token(),
            self.engine,
            self.n_energy,
            self.n_k,
            self.vds,
            self.mu_source,
            self.vg_start,
            self.vg_stop,
            self.vg_points,
        )
    }

    /// Content-address of this job under the shipped tolerance policy:
    /// identical requests (after canonicalization) get identical keys;
    /// any physical field change or a tolerance-policy schema bump
    /// changes the key.
    pub fn cache_key(&self) -> u128 {
        self.cache_key_under_policy(omen_num::tolerance::POLICY_SCHEMA)
    }

    /// [`SweepRequest::cache_key`] under an explicit tolerance-policy
    /// version tag (exposed so tests can prove a policy bump invalidates
    /// the cache).
    pub fn cache_key_under_policy(&self, policy_version: &str) -> u128 {
        let mut h = Fnv128::new();
        h.write_str("omen-serve-cache-key-v1");
        h.write_str(policy_version);
        h.write_str(&self.material);
        h.write_str(&self.geometry);
        h.write(&self.width.to_bits().to_le_bytes());
        h.write(&(self.slabs as u64).to_le_bytes());
        h.write(&self.doping_sd.to_bits().to_le_bytes());
        h.write(&[u8::from(self.pin)]);
        h.write_str(self.mode.token());
        h.write_str(&self.engine);
        h.write(&(self.n_energy as u64).to_le_bytes());
        h.write(&(self.n_k as u64).to_le_bytes());
        h.write(&self.vds.to_bits().to_le_bytes());
        h.write(&self.mu_source.to_bits().to_le_bytes());
        h.write(&self.vg_start.to_bits().to_le_bytes());
        h.write(&self.vg_stop.to_bits().to_le_bytes());
        h.write(&(self.vg_points as u64).to_le_bytes());
        h.finish()
    }

    /// The transport engine this request selects.
    ///
    /// # Errors
    ///
    /// [`OmenError::Protocol`] if the stored token is not a known engine
    /// (cannot happen for a request that came out of [`SweepRequest::parse`]).
    pub fn engine_kind(&self) -> OmenResult<Engine> {
        engine_of(&self.engine)
    }

    /// Builds the device spec this request describes.
    ///
    /// # Errors
    ///
    /// [`OmenError::Protocol`] if the stored material token is invalid
    /// (cannot happen for a parsed request).
    pub fn device_spec(&self) -> OmenResult<TransistorSpec> {
        let material = material_of(&self.material)?;
        let mut spec = TransistorSpec::si_nanowire_nmos(material, self.width.max(0.5), self.slabs);
        spec.geometry = match self.geometry.as_str() {
            "utb" => Geometry::Utb {
                cells: 1,
                h: self.width,
            },
            "ribbon" => Geometry::Ribbon {
                n_dimer: self.width as usize,
            },
            _ => Geometry::Nanowire {
                w: self.width,
                h: self.width,
            },
        };
        spec.material = material;
        spec.doping_sd = self.doping_sd;
        spec.pin_junction = self.pin;
        Ok(spec)
    }

    /// The gate-voltage grid of the sweep.
    pub fn v_gates(&self) -> Vec<f64> {
        linspace(self.vg_start, self.vg_stop, self.vg_points)
    }
}

fn material_of(token: &str) -> OmenResult<Material> {
    match token {
        "si_sp3s" => Ok(Material::SiSp3s),
        "si_sp3d5s" => Ok(Material::SiSp3d5s),
        "gaas_sp3s" => Ok(Material::GaAsSp3s),
        "graphene_pz" => Ok(Material::GraphenePz),
        m if m.starts_with("single_band_") => {
            let t: i32 = m["single_band_".len()..]
                .parse()
                .map_err(|_| bad(format!("bad single_band hopping in `{m}`")))?;
            Ok(Material::SingleBand { t_mev: t })
        }
        m => Err(bad(format!("unknown material `{m}`"))),
    }
}

fn engine_of(token: &str) -> OmenResult<Engine> {
    match token {
        "wf" => Ok(Engine::WfThomas),
        "rgf" => Ok(Engine::Rgf),
        "selinv" => Ok(Engine::SelInv),
        e => Err(bad(format!("unknown engine `{e}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> &'static str {
        "material = single_band_1000\nmode = frozen\nslabs = 6\nn_energy = 15\n\
         vg_points = 3\nvg_start = -0.1\nvg_stop = 0.1\nmu_source = -3.4\ndoping_sd = 0.0\n"
    }

    #[test]
    fn defaults_parse_and_round_trip_canonically() {
        let d = SweepRequest::parse("").expect("empty request takes all defaults");
        let again = SweepRequest::parse(&d.canonical_text()).expect("canonical text re-parses");
        assert_eq!(d, again);
        assert_eq!(d.cache_key(), again.cache_key());
    }

    #[test]
    fn reordered_and_reformatted_fields_hash_identically() {
        let a = SweepRequest::parse("vds = 0.2\nslabs = 6\nn_energy = 15\n").expect("parses");
        let b = SweepRequest::parse("n_energy  =   15  # comment\n\nslabs=6\nvds = 2e-1\n")
            .expect("parses");
        assert_eq!(a, b);
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn every_physical_field_change_changes_the_key() {
        let base = SweepRequest::parse(small()).expect("parses");
        let key = base.cache_key();
        // One more bias point.
        let mut r = base.clone();
        r.vg_points += 1;
        assert_ne!(r.cache_key(), key, "vg_points");
        // A shifted bias endpoint.
        let mut r = base.clone();
        r.vg_stop += 0.05;
        assert_ne!(r.cache_key(), key, "vg_stop");
        // One more k point.
        let mut r = base.clone();
        r.n_k += 1;
        assert_ne!(r.cache_key(), key, "n_k");
        // A different engine.
        let mut r = base.clone();
        r.engine = "rgf".to_string();
        assert_ne!(r.cache_key(), key, "engine");
        // A different structure.
        let mut r = base.clone();
        r.slabs += 1;
        assert_ne!(r.cache_key(), key, "slabs");
        // A tolerance-policy version bump.
        assert_ne!(
            base.cache_key_under_policy("omen-tolerances-v999"),
            key,
            "policy version"
        );
    }

    #[test]
    fn unknown_key_and_bad_values_yield_typed_protocol_errors() {
        for text in [
            "materiall = si_sp3s\n",
            "width = not_a_number\n",
            "vds = inf\n",
            "vds = nan\n",
            "pin = yes\n",
            "engine = magic\n",
            "mode = warp\n",
            "material = plutonium\n",
            "geometry = klein_bottle\n",
            "vg_points = 0\n",
            "slabs = 1\n",
            "n_energy = 0\n",
            "n_k = 0\n",
            "width = -1.0\n",
            "no equals sign",
        ] {
            match SweepRequest::parse(text) {
                Err(OmenError::Protocol { context, .. }) => assert_eq!(context, "request"),
                other => panic!("`{text}` should be a Protocol error, got {other:?}"),
            }
        }
    }

    #[test]
    fn device_spec_and_grid_are_buildable() {
        let r = SweepRequest::parse(small()).expect("parses");
        let spec = r.device_spec().expect("buildable");
        assert_eq!(spec.num_slabs, 6);
        assert_eq!(r.v_gates().len(), 3);
        assert!(matches!(r.engine_kind().expect("engine"), Engine::WfThomas));
    }
}
