//! The serve daemon's state machine: admission, fair-share queue,
//! in-flight dedupe, content-addressed result cache, worker pool,
//! progress fan-out, and graceful drain.
//!
//! Design invariants (DESIGN.md §14):
//!
//! - **Admission is total.** Every submission gets exactly one typed
//!   answer: `Accepted` (fresh / joined / cached), `Busy` (bounded
//!   queue at capacity — never a silent drop), or `Reject` (malformed
//!   request or draining server).
//! - **One solve per content address.** Identical requests — concurrent
//!   or repeated — share one solve: in-flight jobs dedupe by cache key,
//!   finished jobs are served from the cache bit-identically. The
//!   `solves_started` counter is the auditable witness.
//! - **Fair share.** Each connection has its own FIFO; the dispatcher
//!   round-robins across connections, so one client queueing a hundred
//!   sweeps cannot starve a client queueing one.
//! - **Jobs outlive clients.** Progress fan-out drops dead subscribers
//!   silently; the solve always runs to completion and caches, so a
//!   disconnect never wastes compute.
//! - **Workers are fault bulkheads.** A panic inside a solve is caught
//!   and surfaced as a typed job failure; the worker thread survives
//!   and keeps serving.

use crate::protocol::{Disposition, Frame, Progress, StatsSnapshot};
use crate::request::{Mode, SweepRequest};
use omen_core::iv::{frozen_field_sweep_observed, gate_sweep_observed, PointProgress};
use omen_core::ScfOptions;
use omen_num::{OmenError, OmenResult, SweepReport};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// A sweep solver the server dispatches jobs to: gets the validated
/// request and a progress sink, returns the serialized result payload.
/// Injectable so tests and benchmarks can run synthetic solves.
pub type Executor =
    Arc<dyn Fn(&SweepRequest, &mut dyn FnMut(Progress)) -> OmenResult<Vec<u8>> + Send + Sync>;

/// Server sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads in the shared solve pool.
    pub workers: usize,
    /// Maximum jobs queued (waiting, not running) across all clients;
    /// submissions beyond this get a typed `Busy`.
    pub queue_capacity: usize,
    /// Byte budget for the finished-result cache. Least-recently-used
    /// results are evicted once stored payload bytes exceed it; a single
    /// payload larger than the whole budget is never cached (it would
    /// empty the cache and still not fit). In-flight dedupe is
    /// unaffected — it keys on the job table, not the cache.
    pub cache_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            cache_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Locks a mutex, recovering the guard from a poisoned lock: server
/// state is a set of counters and maps whose critical sections cannot
/// panic halfway, and job panics are caught *outside* any lock, so a
/// poisoned state lock only means some unrelated thread died — the
/// data is still consistent and serving must continue.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Job {
    id: u64,
    key: u128,
    request: SweepRequest,
    /// Progress/completion subscribers (one per client streaming this
    /// job). Send failures mean the client went away — ignored.
    subs: Mutex<Vec<Sender<Frame>>>,
}

impl Job {
    fn broadcast(&self, frame: &Frame) {
        for tx in lock(&self.subs).iter() {
            let _ = tx.send(frame.clone());
        }
    }
}

#[derive(Default)]
struct Counters {
    jobs_accepted: u64,
    busy_rejections: u64,
    solves_started: u64,
    cache_hits: u64,
    dedupe_joins: u64,
    cache_evictions: u64,
}

/// One finished result in the bounded cache, tagged with its recency
/// tick (the key into the LRU index).
struct CacheEntry {
    bytes: Arc<Vec<u8>>,
    tick: u64,
}

struct State {
    /// Per-client FIFO queues, keyed by connection id (BTreeMap so the
    /// round-robin order is deterministic).
    queues: BTreeMap<u64, VecDeque<Arc<Job>>>,
    /// Connection id served last; the dispatcher resumes after it.
    rr_last: u64,
    queued: usize,
    running: usize,
    /// Queued or running jobs by content address (the dedupe table).
    inflight: HashMap<u128, Arc<Job>>,
    /// Finished results by content address, LRU-bounded by
    /// [`ServerConfig::cache_bytes`].
    cache: HashMap<u128, CacheEntry>,
    /// Recency index: tick → content address, oldest first. Ticks are
    /// drawn from `next_tick`, so every entry's tick is unique.
    lru: BTreeMap<u64, u128>,
    /// Payload bytes currently cached.
    cache_used: usize,
    next_tick: u64,
    counters: Counters,
    draining: bool,
    next_job_id: u64,
}

impl State {
    /// Cache lookup that refreshes the entry's recency.
    fn cache_get(&mut self, key: u128) -> Option<Arc<Vec<u8>>> {
        let tick = self.next_tick;
        let entry = self.cache.get_mut(&key)?;
        self.next_tick += 1;
        self.lru.remove(&entry.tick);
        entry.tick = tick;
        self.lru.insert(tick, key);
        Some(Arc::clone(&entry.bytes))
    }

    /// Inserts a finished result, evicting least-recently-used entries
    /// until the cache fits `budget`. Returns how many were evicted.
    /// The fresh entry holds the newest tick, so it is never the
    /// eviction victim — oversized payloads are rejected up front.
    fn cache_insert(&mut self, key: u128, bytes: Arc<Vec<u8>>, budget: usize) -> u64 {
        if bytes.len() > budget {
            return 0;
        }
        if let Some(old) = self.cache.remove(&key) {
            self.lru.remove(&old.tick);
            self.cache_used -= old.bytes.len();
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.cache_used += bytes.len();
        self.cache.insert(key, CacheEntry { bytes, tick });
        self.lru.insert(tick, key);
        let mut evicted = 0u64;
        while self.cache_used > budget {
            // An over-budget cache always has a resident entry, so the
            // breaks never fire; they keep an (impossible) bookkeeping
            // desync from looping forever instead of panicking a worker.
            let Some((&t, &k)) = self.lru.iter().next() else {
                break;
            };
            self.lru.remove(&t);
            let Some(e) = self.cache.remove(&k) else {
                break;
            };
            self.cache_used -= e.bytes.len();
            evicted += 1;
        }
        self.counters.cache_evictions += evicted;
        evicted
    }
}

struct Shared {
    cfg: ServerConfig,
    executor: Executor,
    state: Mutex<State>,
    work_cv: Condvar,
    stop_accept: AtomicBool,
}

/// What the admission path decided for one `Submit`.
enum Admission {
    /// Write this one frame (Reject or Busy) and move on.
    Refused(Frame),
    /// Cache hit: write `Accepted` then `Done` immediately.
    Cached(Frame, Frame),
    /// Fresh or joined job: write `Accepted`, then relay the stream
    /// until `Done`/`JobFailed`.
    Streaming(Frame, Receiver<Frame>),
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        let st = lock(&self.state);
        StatsSnapshot {
            jobs_accepted: st.counters.jobs_accepted,
            busy_rejections: st.counters.busy_rejections,
            solves_started: st.counters.solves_started,
            cache_hits: st.counters.cache_hits,
            dedupe_joins: st.counters.dedupe_joins,
            cache_evictions: st.counters.cache_evictions,
            queued: st.queued as u64,
            running: st.running as u64,
        }
    }

    fn begin_drain(&self) {
        lock(&self.state).draining = true;
        self.work_cv.notify_all();
    }

    fn admit(&self, client_id: u64, text: &str) -> Admission {
        let request = match SweepRequest::parse(text) {
            Ok(r) => r,
            Err(e) => return Admission::Refused(Frame::Reject(e.to_string())),
        };
        let key = request.cache_key();
        let mut st = lock(&self.state);
        if st.draining {
            return Admission::Refused(Frame::Reject(
                "server is draining; not accepting new jobs".to_string(),
            ));
        }
        let job_id = st.next_job_id;
        if let Some(bytes) = st.cache_get(key) {
            st.counters.jobs_accepted += 1;
            st.counters.cache_hits += 1;
            st.next_job_id += 1;
            return Admission::Cached(
                Frame::Accepted {
                    job_id,
                    cache_key: key,
                    disposition: Disposition::Cached,
                },
                Frame::Done {
                    cache_hit: true,
                    payload: bytes.as_ref().clone(),
                },
            );
        }
        if let Some(job) = st.inflight.get(&key).cloned() {
            st.counters.jobs_accepted += 1;
            st.counters.dedupe_joins += 1;
            let (tx, rx) = channel();
            lock(&job.subs).push(tx);
            return Admission::Streaming(
                Frame::Accepted {
                    job_id: job.id,
                    cache_key: key,
                    disposition: Disposition::Joined,
                },
                rx,
            );
        }
        if st.queued >= self.cfg.queue_capacity {
            st.counters.busy_rejections += 1;
            return Admission::Refused(Frame::Busy {
                queue_depth: st.queued as u64,
                capacity: self.cfg.queue_capacity as u64,
            });
        }
        let (tx, rx) = channel();
        let job = Arc::new(Job {
            id: job_id,
            key,
            request,
            subs: Mutex::new(vec![tx]),
        });
        st.next_job_id += 1;
        st.counters.jobs_accepted += 1;
        st.inflight.insert(key, Arc::clone(&job));
        st.queues.entry(client_id).or_default().push_back(job);
        st.queued += 1;
        drop(st);
        self.work_cv.notify_one();
        Admission::Streaming(
            Frame::Accepted {
                job_id,
                cache_key: key,
                disposition: Disposition::Fresh,
            },
            rx,
        )
    }

    /// Pops the next job fair-share: round-robin over client queues,
    /// resuming after the last-served connection id.
    fn pick_next(st: &mut State) -> Option<Arc<Job>> {
        let ids: Vec<u64> = st.queues.keys().copied().collect();
        if ids.is_empty() {
            return None;
        }
        // Clients strictly after the last-served id first, then wrap.
        let split = ids.partition_point(|&id| id <= st.rr_last);
        let order = ids[split..].iter().chain(ids[..split].iter());
        for &id in order {
            let popped = st.queues.get_mut(&id).and_then(VecDeque::pop_front);
            if let Some(job) = popped {
                if st.queues.get(&id).is_some_and(VecDeque::is_empty) {
                    st.queues.remove(&id);
                }
                st.rr_last = id;
                st.queued -= 1;
                st.running += 1;
                st.counters.solves_started += 1;
                return Some(job);
            }
        }
        None
    }

    fn worker_loop(&self, worker_idx: usize) {
        loop {
            let job = {
                let mut st = lock(&self.state);
                loop {
                    if let Some(job) = Shared::pick_next(&mut st) {
                        break job;
                    }
                    if st.draining {
                        return;
                    }
                    st = self
                        .work_cv
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            crate::log_line(&format!(
                "serve worker {worker_idx}: solving job {} key {}",
                job.id,
                crate::hash::hex128(job.key)
            ));
            let executor = Arc::clone(&self.executor);
            let job_for_progress = Arc::clone(&job);
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                let mut sink = |p: Progress| {
                    job_for_progress.broadcast(&Frame::Progress(p));
                };
                executor(&job_for_progress.request, &mut sink)
            }));
            let finished: Result<Vec<u8>, String> = match outcome {
                Ok(Ok(bytes)) => Ok(bytes),
                Ok(Err(e)) => Err(e.to_string()),
                Err(panic) => Err(OmenError::RankFailed {
                    rank: worker_idx,
                    detail: format!("serve worker panicked: {}", panic_detail(&panic)),
                }
                .to_string()),
            };
            {
                let mut st = lock(&self.state);
                st.inflight.remove(&job.key);
                st.running -= 1;
                if let Ok(bytes) = &finished {
                    let evicted =
                        st.cache_insert(job.key, Arc::new(bytes.clone()), self.cfg.cache_bytes);
                    if evicted > 0 {
                        let (used, total) = (st.cache_used, st.counters.cache_evictions);
                        drop(st);
                        crate::log_line(&format!(
                            "serve cache: evicted {evicted} result(s) to fit {} B budget \
                             ({used} B cached, {total} evictions total)",
                            self.cfg.cache_bytes,
                        ));
                    }
                }
            }
            let final_frame = match finished {
                Ok(payload) => Frame::Done {
                    cache_hit: false,
                    payload,
                },
                Err(detail) => Frame::JobFailed(detail),
            };
            job.broadcast(&final_frame);
        }
    }
}

fn panic_detail(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ------------------------------------------------------------ executor

/// The production executor: builds the device a request describes and
/// runs the real sweep drivers, forwarding each per-point observation
/// (with cumulative [`SweepReport`] totals) to the progress sink.
pub fn solver_executor() -> Executor {
    Arc::new(|req, on_progress| {
        let spec = req.device_spec()?;
        let engine = req.engine_kind()?;
        let v_gates = req.v_gates();
        let mut cum = SweepReport::default();
        let points = {
            let mut observe = |prog: PointProgress<'_>| {
                cum.merge(prog.report);
                on_progress(Progress {
                    seq: prog.seq,
                    index: prog.index as u64,
                    total: prog.total as u64,
                    v_gate: prog.point.v_gate,
                    v_ds: prog.point.v_ds,
                    current_ua: prog.point.current_ua,
                    scf_iters: prog.point.scf_iterations as u64,
                    converged: prog.point.converged,
                    solved: cum.solved as u64,
                    retried: cum.retried as u64,
                    recovered: cum.recovered as u64,
                    failed: cum.failed.len() as u64,
                });
            };
            match req.mode {
                Mode::Frozen => {
                    let tr = spec.build();
                    frozen_field_sweep_observed(
                        &tr,
                        &v_gates,
                        req.vds,
                        req.mu_source,
                        engine,
                        req.n_energy,
                        &mut observe,
                    )
                }
                Mode::Scf => {
                    let mut tr = spec.build();
                    let opts = ScfOptions {
                        engine,
                        n_energy: req.n_energy,
                        ..ScfOptions::default()
                    };
                    gate_sweep_observed(
                        &mut tr,
                        &v_gates,
                        req.vds,
                        req.mu_source,
                        &opts,
                        &mut observe,
                    )
                }
            }
        };
        Ok(crate::protocol::encode_result(&points, &cum))
    })
}

// -------------------------------------------------------------- server

/// A running serve daemon: TCP acceptor + worker pool around the shared
/// state machine.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and worker pool with an injected executor.
    ///
    /// # Errors
    ///
    /// [`OmenError::Protocol`] when the listener cannot bind.
    pub fn start_with_executor(
        addr: &str,
        cfg: ServerConfig,
        executor: Executor,
    ) -> OmenResult<Server> {
        let listener = TcpListener::bind(addr).map_err(|e| OmenError::Protocol {
            context: "listener",
            detail: format!("cannot bind {addr}: {e}"),
        })?;
        let local = listener.local_addr().map_err(|e| OmenError::Protocol {
            context: "listener",
            detail: format!("no local addr: {e}"),
        })?;
        let shared = Arc::new(Shared {
            cfg,
            executor,
            state: Mutex::new(State {
                queues: BTreeMap::new(),
                rr_last: 0,
                queued: 0,
                running: 0,
                inflight: HashMap::new(),
                cache: HashMap::new(),
                lru: BTreeMap::new(),
                cache_used: 0,
                next_tick: 0,
                counters: Counters::default(),
                draining: false,
                next_job_id: 1,
            }),
            work_cv: Condvar::new(),
            stop_accept: AtomicBool::new(false),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|idx| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || sh.worker_loop(idx))
            })
            .collect();
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::spawn(move || {
            let mut next_client = 1u64;
            for stream in listener.incoming() {
                if accept_shared.stop_accept.load(Ordering::SeqCst) {
                    return;
                }
                if let Ok(stream) = stream {
                    // Frames are small and latency-bound: Nagle + delayed
                    // ACK would add ~40 ms to every streamed frame.
                    let _ = stream.set_nodelay(true);
                    let sh = Arc::clone(&accept_shared);
                    let client_id = next_client;
                    next_client += 1;
                    std::thread::spawn(move || handle_connection(&sh, stream, client_id));
                }
            }
        });
        crate::log_line(&format!(
            "serve listening on {local} ({} workers, queue capacity {}, cache budget {} B)",
            cfg.workers.max(1),
            cfg.queue_capacity,
            cfg.cache_bytes
        ));
        Ok(Server {
            shared,
            addr: local,
            accept_handle: Some(accept_handle),
            workers,
        })
    }

    /// [`Server::start_with_executor`] with the production solver.
    ///
    /// # Errors
    ///
    /// [`OmenError::Protocol`] when the listener cannot bind.
    pub fn start(addr: &str, cfg: ServerConfig) -> OmenResult<Server> {
        Server::start_with_executor(addr, cfg, solver_executor())
    }

    /// The bound address (the ephemeral port when started on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current load/health counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Starts a graceful drain: new submissions are rejected, queued
    /// and running jobs run to completion.
    pub fn begin_drain(&self) {
        self.shared.begin_drain();
    }

    /// Blocks until the drain finishes (workers exhausted the queue and
    /// exited), then stops accepting connections. A drain must have
    /// been started — by [`Server::begin_drain`] or a client `Shutdown`
    /// frame — or this blocks until one is.
    pub fn join(mut self) {
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.stop_accept.store(true, Ordering::SeqCst);
        // Nudge the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }

    /// Convenience: drain and join.
    pub fn shutdown_and_join(self) {
        self.begin_drain();
        self.join();
    }
}

/// Writes one frame; `false` means the client is gone.
fn write_frame(stream: &mut TcpStream, frame: &Frame) -> bool {
    stream.write_all(&frame.encode()).is_ok()
}

fn handle_connection(shared: &Shared, mut stream: TcpStream, client_id: u64) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    loop {
        let frame = match crate::protocol::read_frame(&mut reader) {
            Ok(Some(f)) => f,
            // Clean close on a frame boundary.
            Ok(None) => return,
            // Protocol violation: answer typed, then hang up.
            Err(e) => {
                let _ = write_frame(&mut stream, &Frame::Reject(e.to_string()));
                return;
            }
        };
        match frame {
            Frame::Ping => {
                if !write_frame(&mut stream, &Frame::Pong) {
                    return;
                }
            }
            Frame::Stats => {
                if !write_frame(&mut stream, &Frame::StatsReply(shared.snapshot())) {
                    return;
                }
            }
            Frame::Shutdown => {
                shared.begin_drain();
                let _ = write_frame(&mut stream, &Frame::ShutdownAck);
                return;
            }
            Frame::Submit(text) => match shared.admit(client_id, &text) {
                Admission::Refused(f) => {
                    if !write_frame(&mut stream, &f) {
                        return;
                    }
                }
                Admission::Cached(accepted, done) => {
                    if !write_frame(&mut stream, &accepted) || !write_frame(&mut stream, &done) {
                        return;
                    }
                }
                Admission::Streaming(accepted, rx) => {
                    if !write_frame(&mut stream, &accepted) {
                        // Client left before the ack; the job still
                        // runs and caches — drop the receiver.
                        return;
                    }
                    for f in rx.iter() {
                        let last = matches!(f, Frame::Done { .. } | Frame::JobFailed(_));
                        if !write_frame(&mut stream, &f) {
                            // Disconnect mid-stream: stop relaying; the
                            // worker keeps solving into the cache.
                            return;
                        }
                        if last {
                            break;
                        }
                    }
                }
            },
            // A client sending server-side frames is violating the
            // protocol.
            other => {
                let _ = write_frame(
                    &mut stream,
                    &Frame::Reject(format!(
                        "unexpected client frame {}; clients send Submit/Ping/Stats/Shutdown",
                        frame_name(&other)
                    )),
                );
                return;
            }
        }
    }
}

fn frame_name(f: &Frame) -> &'static str {
    match f {
        Frame::Submit(_) => "Submit",
        Frame::Ping => "Ping",
        Frame::Stats => "Stats",
        Frame::Shutdown => "Shutdown",
        Frame::Accepted { .. } => "Accepted",
        Frame::Busy { .. } => "Busy",
        Frame::Reject(_) => "Reject",
        Frame::Progress(_) => "Progress",
        Frame::Done { .. } => "Done",
        Frame::JobFailed(_) => "JobFailed",
        Frame::StatsReply(_) => "StatsReply",
        Frame::Pong => "Pong",
        Frame::ShutdownAck => "ShutdownAck",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64) -> Arc<Job> {
        Arc::new(Job {
            id,
            key: u128::from(id),
            request: SweepRequest::parse("").expect("defaults parse"),
            subs: Mutex::new(Vec::new()),
        })
    }

    fn state_with(queues: &[(u64, &[u64])]) -> State {
        let mut st = State {
            queues: BTreeMap::new(),
            rr_last: 0,
            queued: 0,
            running: 0,
            inflight: HashMap::new(),
            cache: HashMap::new(),
            lru: BTreeMap::new(),
            cache_used: 0,
            next_tick: 0,
            counters: Counters::default(),
            draining: false,
            next_job_id: 1,
        };
        for &(client, jobs) in queues {
            let q: VecDeque<Arc<Job>> = jobs.iter().map(|&id| job(id)).collect();
            st.queued += q.len();
            st.queues.insert(client, q);
        }
        st
    }

    #[test]
    fn dispatch_round_robins_across_clients() {
        // Client 1 queued three jobs before clients 2 and 3 queued one
        // each; fair share interleaves instead of draining client 1.
        let mut st = state_with(&[(1, &[10, 11, 12]), (2, &[20]), (3, &[30])]);
        let order: Vec<u64> =
            std::iter::from_fn(|| Shared::pick_next(&mut st).map(|j| j.id)).collect();
        assert_eq!(order, vec![10, 20, 30, 11, 12]);
        assert_eq!(st.queued, 0);
        assert_eq!(st.running, 5);
        assert_eq!(st.counters.solves_started, 5);
        assert!(st.queues.is_empty(), "drained queues are removed");
    }

    #[test]
    fn cache_lru_evicts_by_recency_within_byte_budget() {
        let mut st = state_with(&[]);
        let budget = 100;
        assert_eq!(st.cache_insert(1, Arc::new(vec![0u8; 40]), budget), 0);
        assert_eq!(st.cache_insert(2, Arc::new(vec![0u8; 40]), budget), 0);
        // Third 40-byte entry overflows the 100-byte budget: the least
        // recently used (key 1) goes.
        assert_eq!(st.cache_insert(3, Arc::new(vec![0u8; 40]), budget), 1);
        assert!(st.cache_get(1).is_none(), "oldest entry evicted");
        assert!(st.cache_get(2).is_some());
        assert!(st.cache_get(3).is_some());
        assert_eq!(st.cache_used, 80);
        assert_eq!(st.counters.cache_evictions, 1);
        // A hit refreshes recency: after touching 2, inserting 4 evicts 3.
        let _ = st.cache_get(2);
        assert_eq!(st.cache_insert(4, Arc::new(vec![0u8; 40]), budget), 1);
        assert!(st.cache_get(3).is_none(), "hit on 2 made 3 the victim");
        assert!(st.cache_get(2).is_some());
        // Replacing a resident key swaps bytes without double counting.
        assert_eq!(st.cache_insert(4, Arc::new(vec![0u8; 10]), budget), 0);
        assert_eq!(st.cache_used, 50);
        // A payload over the whole budget is never cached, evicts nothing.
        assert_eq!(st.cache_insert(9, Arc::new(vec![0u8; 101]), budget), 0);
        assert!(st.cache_get(9).is_none());
        assert_eq!(st.counters.cache_evictions, 2);
        assert_eq!(st.lru.len(), st.cache.len(), "indexes stay aligned");
    }

    #[test]
    fn dispatch_resumes_after_last_served_client() {
        let mut st = state_with(&[(1, &[10]), (5, &[50])]);
        st.rr_last = 3;
        // Last served id 3: the next pick starts at the first id > 3.
        let first = Shared::pick_next(&mut st).map(|j| j.id);
        assert_eq!(first, Some(50));
        let second = Shared::pick_next(&mut st).map(|j| j.id);
        assert_eq!(second, Some(10));
    }
}
