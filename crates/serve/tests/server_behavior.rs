//! Server state-machine battery over real localhost TCP: admission,
//! dedupe, cache, backpressure, fault injection, disconnect survival,
//! graceful drain. Solves are synthetic (injected executors) so the
//! battery runs in milliseconds; the end-to-end test with the real
//! solver lives in the workspace-root `tests/serve_service.rs`.

use omen_num::OmenError;
use omen_serve::protocol::{read_frame, Frame, Progress};
use omen_serve::{Client, Disposition, Executor, Server, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A reusable open/closed latch for holding synthetic solves in flight.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }
    fn open(&self) {
        *self.open.lock().expect("gate lock") = true;
        self.cv.notify_all();
    }
    fn wait(&self) {
        let mut open = self.open.lock().expect("gate lock");
        while !*open {
            open = self.cv.wait(open).expect("gate wait");
        }
    }
}

/// Synthetic executor: counts solves, optionally blocks on a gate, and
/// returns a payload derived from the request (so different requests
/// have different payloads).
fn counting_executor(solves: Arc<AtomicUsize>, gate: Option<Arc<Gate>>) -> Executor {
    Arc::new(move |req, on_progress| {
        solves.fetch_add(1, Ordering::SeqCst);
        on_progress(Progress {
            seq: 0,
            index: 0,
            total: 1,
            v_gate: req.vg_start,
            v_ds: req.vds,
            current_ua: 1.0,
            scf_iters: 1,
            converged: true,
            solved: 1,
            retried: 0,
            recovered: 0,
            failed: 0,
        });
        if let Some(g) = &gate {
            g.wait();
        }
        Ok(req.canonical_text().into_bytes())
    })
}

fn spawn(cfg: ServerConfig, executor: Executor) -> Server {
    Server::start_with_executor("127.0.0.1:0", cfg, executor).expect("server starts")
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.addr().to_string()).expect("client connects")
}

/// Polls the server stats until `pred` holds (bounded wait).
fn wait_for(server: &Server, pred: impl Fn(&omen_serve::StatsSnapshot) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if pred(&server.stats()) {
            return;
        }
        assert!(Instant::now() < deadline, "stats condition never held");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn ping_stats_and_typed_reject_over_tcp() {
    let server = spawn(
        ServerConfig::default(),
        counting_executor(Arc::new(AtomicUsize::new(0)), None),
    );
    let mut c = connect(&server);
    c.ping().expect("pong");
    let s = c.stats().expect("stats");
    assert_eq!(s.jobs_accepted, 0);
    // A malformed request is refused with the parse detail.
    let err = c
        .submit_and_wait("materiall = si_sp3s\n")
        .expect_err("rejected");
    let msg = err.to_string();
    assert!(msg.contains("unknown key"), "{msg}");
    // The connection survives a reject: the next submit works.
    let out = c.submit_and_wait("vg_points = 1\n").expect("job runs");
    assert_eq!(out.disposition, Disposition::Fresh);
    server.shutdown_and_join();
}

#[test]
fn identical_concurrent_submissions_share_one_solve() {
    let solves = Arc::new(AtomicUsize::new(0));
    let gate = Gate::new();
    let server = spawn(
        ServerConfig {
            workers: 2,
            queue_capacity: 8,
            ..ServerConfig::default()
        },
        counting_executor(Arc::clone(&solves), Some(Arc::clone(&gate))),
    );
    let req = "vg_points = 3\nvds = 0.25\n";

    // Client A submits and the job starts solving (held by the gate).
    let addr = server.addr().to_string();
    let req_a = req.to_string();
    let a = std::thread::spawn(move || {
        let mut c = Client::connect(&addr).expect("connect");
        c.submit_and_wait(&req_a).expect("job completes")
    });
    wait_for(&server, |s| s.running == 1);

    // Client B submits the identical request: admitted as Joined, no
    // second solve.
    let addr = server.addr().to_string();
    let req_b = req.to_string();
    let b = std::thread::spawn(move || {
        let mut c = Client::connect(&addr).expect("connect");
        c.submit_and_wait(&req_b).expect("job completes")
    });
    wait_for(&server, |s| s.dedupe_joins == 1);
    gate.open();

    let out_a = a.join().expect("thread a");
    let out_b = b.join().expect("thread b");
    assert_eq!(solves.load(Ordering::SeqCst), 1, "exactly one solve");
    assert_eq!(out_a.cache_key, out_b.cache_key);
    assert_eq!(out_a.payload, out_b.payload, "joined payload bit-identical");
    assert!(matches!(
        out_b.disposition,
        Disposition::Joined | Disposition::Cached
    ));

    // A repeat of the same request is now a cache hit, bit-identical.
    let mut c = connect(&server);
    let out_c = c.submit_and_wait(req).expect("cache hit");
    assert_eq!(out_c.disposition, Disposition::Cached);
    assert!(out_c.cache_hit);
    assert_eq!(out_c.payload, out_a.payload, "cached payload bit-identical");
    assert_eq!(
        solves.load(Ordering::SeqCst),
        1,
        "cache hit does not re-solve"
    );

    let s = server.stats();
    assert_eq!(s.solves_started, 1);
    assert_eq!(s.dedupe_joins, 1);
    assert_eq!(s.cache_hits, 1);
    assert_eq!(s.jobs_accepted, 3);
    server.shutdown_and_join();
}

#[test]
fn bounded_queue_yields_typed_busy() {
    let gate = Gate::new();
    let server = spawn(
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        },
        counting_executor(Arc::new(AtomicUsize::new(0)), Some(Arc::clone(&gate))),
    );
    // Job 1 occupies the single worker.
    let addr = server.addr().to_string();
    let t1 = std::thread::spawn(move || {
        let mut c = Client::connect(&addr).expect("connect");
        c.submit_and_wait("vg_points = 1\n").expect("job 1")
    });
    wait_for(&server, |s| s.running == 1);
    // Job 2 (distinct) fills the queue.
    let addr = server.addr().to_string();
    let t2 = std::thread::spawn(move || {
        let mut c = Client::connect(&addr).expect("connect");
        c.submit_and_wait("vg_points = 2\n").expect("job 2")
    });
    wait_for(&server, |s| s.queued == 1);
    // Job 3 (distinct again) overflows: typed Busy, not a hang or drop.
    let mut c = connect(&server);
    match c.submit_and_wait("vg_points = 3\n") {
        Err(OmenError::Busy {
            queue_depth,
            capacity,
        }) => {
            assert_eq!(queue_depth, 1);
            assert_eq!(capacity, 1);
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    assert_eq!(server.stats().busy_rejections, 1);
    gate.open();
    t1.join().expect("t1");
    t2.join().expect("t2");
    server.shutdown_and_join();
}

#[test]
fn worker_panic_is_caught_typed_and_server_keeps_serving() {
    // The executor panics on a sentinel request — simulating a solve
    // that kills its sched worker mid-job.
    let executor: Executor = Arc::new(|req, _on_progress| {
        assert!(req.slabs != 13, "synthetic mid-job worker death");
        Ok(vec![1, 2, 3])
    });
    let server = spawn(
        ServerConfig {
            workers: 1,
            queue_capacity: 4,
            ..ServerConfig::default()
        },
        executor,
    );
    let mut c = connect(&server);
    let err = c
        .submit_and_wait("slabs = 13\n")
        .expect_err("job fails typed");
    let msg = err.to_string();
    assert!(msg.contains("panicked"), "typed panic surface: {msg}");
    assert!(
        msg.contains("rank"),
        "worker identified as failed rank: {msg}"
    );
    // Same worker thread, same connection: still serving.
    let out = c.submit_and_wait("slabs = 6\n").expect("next job succeeds");
    assert_eq!(out.payload, vec![1, 2, 3]);
    let s = server.stats();
    assert_eq!(s.running, 0);
    assert_eq!(s.queued, 0);
    // The failed job is not cached: resubmitting re-solves (and fails
    // again) rather than replaying a bogus result.
    let err2 = c.submit_and_wait("slabs = 13\n").expect_err("fails again");
    assert!(err2.to_string().contains("panicked"), "{err2}");
    server.shutdown_and_join();
}

#[test]
fn client_disconnect_mid_stream_job_completes_and_caches() {
    let solves = Arc::new(AtomicUsize::new(0));
    let gate = Gate::new();
    let server = spawn(
        ServerConfig::default(),
        counting_executor(Arc::clone(&solves), Some(Arc::clone(&gate))),
    );
    let req = "vg_points = 5\n";

    // Raw connection: submit, read Accepted + first Progress, hang up.
    {
        let mut raw = TcpStream::connect(server.addr()).expect("connect");
        raw.write_all(&Frame::Submit(req.to_string()).encode())
            .expect("submit");
        match read_frame(&mut raw).expect("accepted").expect("frame") {
            Frame::Accepted { disposition, .. } => assert_eq!(disposition, Disposition::Fresh),
            other => panic!("expected Accepted, got {other:?}"),
        }
        match read_frame(&mut raw).expect("progress").expect("frame") {
            Frame::Progress(p) => assert_eq!(p.seq, 0),
            other => panic!("expected Progress, got {other:?}"),
        }
        // Drop: disconnect mid-stream while the solve is gate-held.
    }
    gate.open();
    wait_for(&server, |s| s.running == 0 && s.queued == 0);

    // The orphaned job finished and cached: a new client gets a hit.
    let mut c = connect(&server);
    let out = c.submit_and_wait(req).expect("cache hit");
    assert_eq!(out.disposition, Disposition::Cached);
    assert!(out.cache_hit);
    assert_eq!(
        solves.load(Ordering::SeqCst),
        1,
        "disconnect wasted no compute"
    );
    server.shutdown_and_join();
}

#[test]
fn failed_points_surface_in_streamed_frames() {
    // Synthetic sweep of 3 points where the middle one fails: the
    // ledger counts ride the progress frames, and sequence numbers stay
    // gapless across the failure.
    let executor: Executor = Arc::new(|req, on_progress| {
        let mut failed = 0u64;
        let mut solved = 0u64;
        for i in 0..3u64 {
            if i == 1 {
                failed += 1;
            } else {
                solved += 1;
            }
            on_progress(Progress {
                seq: i,
                index: i,
                total: 3,
                v_gate: req.vg_start,
                v_ds: req.vds,
                current_ua: 0.0,
                scf_iters: 0,
                converged: i != 1,
                solved,
                retried: 0,
                recovered: 0,
                failed,
            });
        }
        Ok(vec![0])
    });
    let server = spawn(ServerConfig::default(), executor);
    let mut c = connect(&server);
    let out = c.submit_and_wait("vg_points = 3\n").expect("job completes");
    let seqs: Vec<u64> = out.progress.iter().map(|p| p.seq).collect();
    assert_eq!(
        seqs,
        vec![0, 1, 2],
        "gapless sequence despite a failed point"
    );
    assert_eq!(out.progress[0].failed, 0);
    assert_eq!(out.progress[1].failed, 1, "failure visible in its frame");
    assert_eq!(out.progress[2].failed, 1, "ledger is cumulative");
    server.shutdown_and_join();
}

#[test]
fn result_cache_is_lru_bounded_by_byte_budget() {
    // Fixed 1000-byte payloads against a 2500-byte budget: two results
    // fit, the third evicts the least recently used — and an evicted
    // request is a fresh re-solve, while the dedupe/cache-hit paths for
    // resident entries are untouched.
    let executor: Executor = Arc::new(|req, _on_progress| Ok(vec![req.slabs as u8; 1000]));
    let server = spawn(
        ServerConfig {
            workers: 1,
            queue_capacity: 8,
            cache_bytes: 2500,
        },
        executor,
    );
    let mut c = connect(&server);
    for slabs in [6, 7, 8] {
        let out = c
            .submit_and_wait(&format!("slabs = {slabs}\n"))
            .expect("job runs");
        assert_eq!(out.disposition, Disposition::Fresh);
    }
    // Inserting the third result pushed the cache to 3000 B: the oldest
    // entry (slabs = 6) was evicted.
    assert_eq!(server.stats().cache_evictions, 1);
    // Resident entries still hit (and refresh their recency).
    let out = c.submit_and_wait("slabs = 7\n").expect("cache hit");
    assert_eq!(out.disposition, Disposition::Cached);
    assert_eq!(out.payload, vec![7u8; 1000], "hit payload bit-identical");
    // The evicted request is solved afresh...
    let out = c.submit_and_wait("slabs = 6\n").expect("re-solve");
    assert_eq!(out.disposition, Disposition::Fresh);
    // ...whose insert evicts the now-least-recent slabs = 8 (7 was
    // touched by the hit above), not the freshly touched entry.
    let out = c.submit_and_wait("slabs = 7\n").expect("still cached");
    assert_eq!(out.disposition, Disposition::Cached);
    let s = server.stats();
    assert_eq!(s.solves_started, 4, "eviction costs exactly one re-solve");
    assert_eq!(s.cache_evictions, 2);
    assert_eq!(s.cache_hits, 2);
    assert_eq!(s.dedupe_joins, 0, "dedupe path unaffected by the LRU");
    server.shutdown_and_join();
}

#[test]
fn garbage_bytes_get_a_typed_reject_and_close() {
    let server = spawn(
        ServerConfig::default(),
        counting_executor(Arc::new(AtomicUsize::new(0)), None),
    );
    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n")
        .expect("write garbage");
    match read_frame(&mut raw).expect("reply decodes").expect("frame") {
        Frame::Reject(msg) => assert!(msg.contains("bad magic"), "{msg}"),
        other => panic!("expected Reject, got {other:?}"),
    }
    // Server hung up after the reject: clean FIN, or RST when our
    // trailing garbage was still unread in its receive buffer.
    match read_frame(&mut raw) {
        Ok(None) | Err(OmenError::Protocol { .. }) => {}
        other => panic!("expected a closed connection, got {other:?}"),
    }
    // And it still serves others.
    let mut c = connect(&server);
    c.ping().expect("pong after garbage client");
    server.shutdown_and_join();
}

#[test]
fn shutdown_frame_drains_gracefully_and_refuses_new_work() {
    let solves = Arc::new(AtomicUsize::new(0));
    let server = spawn(
        ServerConfig::default(),
        counting_executor(Arc::clone(&solves), None),
    );
    let mut c = connect(&server);
    c.submit_and_wait("vg_points = 2\n")
        .expect("job before drain");
    let mut c2 = connect(&server);
    c2.shutdown().expect("shutdown acked");
    // New submissions are refused while draining.
    let mut c3 = connect(&server);
    let err = c3.submit_and_wait("vg_points = 4\n").expect_err("draining");
    assert!(err.to_string().contains("draining"), "{err}");
    server.join();
    assert_eq!(solves.load(Ordering::SeqCst), 1);
}
