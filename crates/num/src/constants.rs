//! Physical constants in the simulator's unit system.
//!
//! The workspace-wide convention (matching common nanoelectronics codes):
//! energies in **eV**, lengths in **nm**, temperatures in **K**, currents in
//! **µA**, conductances in **µS**. With these units the free-electron kinetic
//! prefactor `ħ²/(2m₀)` and the conductance quantum are the only places
//! dimensional constants enter the transport kernels.

/// Boltzmann constant in eV/K.
pub const KB: f64 = 8.617_333_262e-5;

/// `ħ²/(2 m₀)` in eV·nm² (free electron mass).
pub const HBAR2_OVER_2M0: f64 = 0.038_099_821;

/// Reduced Planck constant in eV·s.
pub const HBAR_EV_S: f64 = 6.582_119_569e-16;

/// Planck constant in eV·s.
pub const H_EV_S: f64 = 4.135_667_696e-15;

/// Elementary charge in C.
pub const Q_E: f64 = 1.602_176_634e-19;

/// Conductance quantum 2e²/h in µS (includes spin degeneracy factor 2).
pub const G0_US: f64 = 77.480_917_29;

/// Landauer current prefactor `2e/h` expressed so that
/// `I[µA] = I0_UA_PER_EV * ∫ T(E) (f_L - f_R) dE[eV]`.
pub const I0_UA_PER_EV: f64 = 77.480_917_29;

/// Vacuum permittivity in e/(V·nm) — i.e. ε₀ expressed so that a charge
/// density in e/nm³ divided by (ε₀·εr) gives ∇²V in V/nm².
pub const EPS0: f64 = 0.055_263_494;

/// Room temperature in K.
pub const T_ROOM: f64 = 300.0;

/// Thermal voltage kT at 300 K in eV.
pub const KT_ROOM: f64 = KB * T_ROOM;

/// Silicon lattice constant in nm.
pub const A_SI: f64 = 0.543_10;

/// Germanium lattice constant in nm.
pub const A_GE: f64 = 0.565_75;

/// GaAs lattice constant in nm.
pub const A_GAAS: f64 = 0.565_32;

/// InAs lattice constant in nm.
pub const A_INAS: f64 = 0.605_83;

/// Graphene carbon–carbon bond length in nm.
pub const A_CC: f64 = 0.142;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kt_room_is_about_26_mev() {
        assert!((KT_ROOM - 0.02585).abs() < 1e-4);
    }

    #[test]
    fn conductance_quantum() {
        // 2e^2/h = 2 * (1.602176634e-19)^2 / 6.62607015e-34 S = 7.748e-5 S.
        let g0_si = 2.0 * Q_E * Q_E / 6.626_070_15e-34;
        assert!((g0_si * 1e6 - G0_US).abs() < 1e-4);
    }

    #[test]
    fn hbar2_over_2m0() {
        // ħ²/2m0 = (1.054571817e-34)^2 / (2*9.1093837015e-31) J·m²
        let j_m2 = (1.054_571_817e-34_f64).powi(2) / (2.0 * 9.109_383_701_5e-31);
        let ev_nm2 = j_m2 / Q_E * 1e18;
        assert!((ev_nm2 - HBAR2_OVER_2M0).abs() < 1e-6);
    }

    #[test]
    fn eps0_in_device_units() {
        // ε0 = 8.8541878128e-12 F/m = C/(V·m); per nm and per elementary
        // charge: 8.854e-12 / 1.602e-19 * 1e-9 e/(V·nm).
        let v = 8.854_187_812_8e-12 / Q_E * 1e-9;
        assert!((v - EPS0).abs() < 1e-6);
    }
}
