//! Uniform and refinable 1-D grids (energy axes, voltage sweeps).

/// `n` evenly spaced points from `a` to `b` inclusive.
///
/// `n == 1` yields `[a]`. Panics when `n == 0`.
pub fn linspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n > 0, "linspace needs at least one point");
    if n == 1 {
        return vec![a];
    }
    let step = (b - a) / (n - 1) as f64;
    (0..n).map(|i| a + step * i as f64).collect()
}

/// An energy grid that can insert midpoints where a tabulated integrand is
/// rough, used by the transport driver to refine around subband onsets and
/// resonances.
#[derive(Debug, Clone)]
pub struct AdaptiveGrid {
    points: Vec<f64>,
}

impl AdaptiveGrid {
    /// Starts from a uniform grid of `n` points on `[a, b]`.
    pub fn uniform(a: f64, b: f64, n: usize) -> Self {
        AdaptiveGrid {
            points: linspace(a, b, n),
        }
    }

    /// Starts from an existing strictly sorted point set.
    pub fn from_points(points: Vec<f64>) -> Self {
        assert!(points.len() >= 2, "need at least two points");
        assert!(
            points.windows(2).all(|w| w[0] < w[1]),
            "points must be strictly sorted"
        );
        AdaptiveGrid { points }
    }

    /// Current sorted grid points.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty (never, after construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Given integrand samples `f[i] = f(points[i])`, inserts midpoints in
    /// every interval whose linear-interpolation defect against its
    /// neighbours exceeds `tol * max|f|`. Returns the indices (into the *new*
    /// grid) of the freshly inserted points, or an empty vector when the grid
    /// is already adequate.
    pub fn refine(&mut self, f: &[f64], tol: f64) -> Vec<usize> {
        assert_eq!(f.len(), self.points.len(), "one sample per grid point");
        if self.points.len() < 3 {
            return Vec::new();
        }
        let fmax = f.iter().fold(0.0_f64, |m, &v| m.max(v.abs())).max(1e-300);
        let mut split = vec![false; self.points.len() - 1];
        // Estimate curvature per interior point; flag both adjacent intervals.
        for i in 1..self.points.len() - 1 {
            let (x0, x1, x2) = (self.points[i - 1], self.points[i], self.points[i + 1]);
            let t = (x1 - x0) / (x2 - x0);
            let lin = f[i - 1] + (f[i + 1] - f[i - 1]) * t;
            if (f[i] - lin).abs() > tol * fmax {
                split[i - 1] = true;
                split[i] = true;
            }
        }
        let mut new_points = Vec::with_capacity(self.points.len() + split.len());
        let mut inserted = Vec::new();
        for (i, &split_here) in split.iter().enumerate() {
            new_points.push(self.points[i]);
            if split_here {
                inserted.push(new_points.len());
                new_points.push(0.5 * (self.points[i] + self.points[i + 1]));
            }
        }
        new_points.push(self.points[self.points.len() - 1]);
        self.points = new_points;
        inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_spacing() {
        let g = linspace(-1.0, 1.0, 5);
        assert_eq!(g, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
        assert_eq!(linspace(2.0, 3.0, 1), vec![2.0]);
    }

    #[test]
    #[should_panic]
    fn linspace_zero_points_panics() {
        linspace(0.0, 1.0, 0);
    }

    #[test]
    fn refine_flags_sharp_feature() {
        let mut g = AdaptiveGrid::uniform(0.0, 1.0, 11);
        // A sharp Lorentzian at x = 0.5 needs refinement there.
        let f: Vec<f64> = g
            .points()
            .iter()
            .map(|&x| 1.0 / ((x - 0.5).powi(2) + 1e-3))
            .collect();
        let inserted = g.refine(&f, 1e-2);
        assert!(!inserted.is_empty());
        // All inserted points should be near the peak region, grid stays sorted.
        let pts = g.points().to_vec();
        assert!(
            pts.windows(2).all(|w| w[0] < w[1]),
            "grid stays strictly sorted"
        );
    }

    #[test]
    fn refine_leaves_linear_function_alone() {
        let mut g = AdaptiveGrid::uniform(0.0, 1.0, 9);
        let f: Vec<f64> = g.points().iter().map(|&x| 3.0 * x - 1.0).collect();
        assert!(g.refine(&f, 1e-6).is_empty());
        assert_eq!(g.len(), 9);
    }
}
