//! Double-precision complex scalar.
//!
//! `c64` is a `Copy` value type with the full set of arithmetic operators
//! (including mixed `c64 ∘ f64` forms), the transcendental functions needed
//! by quantum-transport kernels (`exp`, `sqrt`, `ln`), and polar helpers.
//! The layout is `repr(C)` so slices of `c64` can be reinterpreted as
//! interleaved `[re, im]` pairs when serializing rank messages.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct c64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl c64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: c64 = c64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: c64 = c64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: c64 = c64 { re: 0.0, im: 1.0 };

    /// Creates `re + i·im`.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        c64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        c64 { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline(always)]
    pub const fn imag(im: f64) -> Self {
        c64 { re: 0.0, im }
    }

    /// Creates `r·e^{iθ}` from polar form.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        c64::new(r * c, r * s)
    }

    /// Complex conjugate `re - i·im`.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`, computed with `hypot` to avoid overflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z = e^re (cos im + i sin im)`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        let (s, c) = self.im.sin_cos();
        c64::new(r * c, r * s)
    }

    /// Principal natural logarithm `ln|z| + i·arg z`.
    #[inline]
    pub fn ln(self) -> Self {
        c64::new(self.abs().ln(), self.arg())
    }

    /// Principal square root (branch cut along the negative real axis).
    pub fn sqrt(self) -> Self {
        // analyze: allow(float-eq, exact-zero input must short-circuit before the half-angle sign transfer)
        if self.re == 0.0 && self.im == 0.0 {
            return c64::ZERO;
        }
        let m = self.abs();
        // Stable half-angle formulas.
        let re = ((m + self.re) * 0.5).sqrt();
        let mut im = ((m - self.re) * 0.5).sqrt();
        if self.im < 0.0 {
            im = -im;
        }
        c64::new(re, im)
    }

    /// Integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return c64::ONE;
        }
        let mut base = if n < 0 { self.inv() } else { self };
        n = n.abs();
        let mut acc = c64::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }

    /// Returns `a*b + c` (no FMA contract — just a convenience).
    #[inline(always)]
    pub fn mul_add(self, b: c64, c: c64) -> Self {
        self * b + c
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        c64::new(self.re * s, self.im * s)
    }
}

impl fmt::Debug for c64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+e}{:+e}i)", self.re, self.im)
    }
}

impl fmt::Display for c64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for c64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        c64::real(re)
    }
}

impl Neg for c64 {
    type Output = c64;
    #[inline(always)]
    fn neg(self) -> c64 {
        c64::new(-self.re, -self.im)
    }
}

impl Add for c64 {
    type Output = c64;
    #[inline(always)]
    fn add(self, o: c64) -> c64 {
        c64::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for c64 {
    type Output = c64;
    #[inline(always)]
    fn sub(self, o: c64) -> c64 {
        c64::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for c64 {
    type Output = c64;
    #[inline(always)]
    fn mul(self, o: c64) -> c64 {
        c64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for c64 {
    type Output = c64;
    #[inline]
    fn div(self, o: c64) -> c64 {
        // Smith's algorithm for robustness against overflow/underflow.
        if o.re.abs() >= o.im.abs() {
            let r = o.im / o.re;
            let d = o.re + o.im * r;
            c64::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = o.re / o.im;
            let d = o.re * r + o.im;
            c64::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

macro_rules! assign_ops {
    ($($trait:ident, $method:ident, $op:tt);*) => {$(
        impl $trait for c64 {
            #[inline(always)]
            fn $method(&mut self, o: c64) { *self = *self $op o; }
        }
        impl $trait<f64> for c64 {
            #[inline(always)]
            fn $method(&mut self, o: f64) { *self = *self $op c64::real(o); }
        }
    )*};
}
assign_ops!(AddAssign, add_assign, +; SubAssign, sub_assign, -;
            MulAssign, mul_assign, *; DivAssign, div_assign, /);

macro_rules! mixed_ops {
    ($($trait:ident, $method:ident, $op:tt);*) => {$(
        impl $trait<f64> for c64 {
            type Output = c64;
            #[inline(always)]
            fn $method(self, o: f64) -> c64 { self $op c64::real(o) }
        }
        impl $trait<c64> for f64 {
            type Output = c64;
            #[inline(always)]
            fn $method(self, o: c64) -> c64 { c64::real(self) $op o }
        }
    )*};
}
mixed_ops!(Add, add, +; Sub, sub, -; Mul, mul, *; Div, div, /);

impl Sum for c64 {
    fn sum<I: Iterator<Item = c64>>(iter: I) -> c64 {
        iter.fold(c64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a c64> for c64 {
    fn sum<I: Iterator<Item = &'a c64>>(iter: I) -> c64 {
        iter.fold(c64::ZERO, |a, &b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: c64, b: c64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn arithmetic_basics() {
        let a = c64::new(1.0, 2.0);
        let b = c64::new(-3.0, 0.5);
        assert_eq!(a + b, c64::new(-2.0, 2.5));
        assert_eq!(a - b, c64::new(4.0, 1.5));
        assert_eq!(a * b, c64::new(-3.0 - 1.0, 0.5 - 6.0));
        assert!(close(a / b * b, a, 1e-14));
    }

    #[test]
    fn mixed_real_ops() {
        let a = c64::new(2.0, -1.0);
        assert_eq!(a * 2.0, c64::new(4.0, -2.0));
        assert_eq!(2.0 * a, c64::new(4.0, -2.0));
        assert_eq!(a + 1.0, c64::new(3.0, -1.0));
        assert_eq!(1.0 - a, c64::new(-1.0, 1.0));
        assert!(close(a / 2.0, c64::new(1.0, -0.5), 1e-15));
    }

    #[test]
    fn conj_and_norms() {
        let a = c64::new(3.0, 4.0);
        assert_eq!(a.conj(), c64::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!((a * a.conj()).im == 0.0);
    }

    #[test]
    fn division_is_robust_at_extreme_scales() {
        let a = c64::new(1e300, 1e300);
        let b = c64::new(1e300, -1e300);
        let q = a / b;
        assert!(q.is_finite(), "Smith division must not overflow: {q:?}");
        assert!(close(q, c64::new(0.0, 1.0), 1e-12));
    }

    #[test]
    fn exp_matches_euler() {
        let z = c64::imag(std::f64::consts::PI);
        assert!(close(z.exp(), c64::real(-1.0), 1e-14));
        let z = c64::new(1.0, 0.5);
        let e = z.exp();
        assert!(close(e, c64::from_polar(1.0_f64.exp(), 0.5), 1e-13));
    }

    #[test]
    fn sqrt_branches() {
        assert!(close(c64::real(-4.0).sqrt(), c64::imag(2.0), 1e-14));
        assert!(close(c64::real(9.0).sqrt(), c64::real(3.0), 1e-14));
        let z = c64::new(-1.0, -1e-30);
        assert!(z.sqrt().im < 0.0, "branch cut: below axis maps to -i side");
        // sqrt(z)^2 == z for a spread of values
        for &z in &[c64::new(2.0, 3.0), c64::new(-5.0, 0.1), c64::new(0.0, -7.0)] {
            let s = z.sqrt();
            assert!(close(s * s, z, 1e-12));
        }
    }

    #[test]
    fn powi_and_inv() {
        let z = c64::new(1.0, 1.0);
        assert!(close(z.powi(2), c64::new(0.0, 2.0), 1e-14));
        assert!(close(z.powi(-1), z.inv(), 1e-14));
        assert!(close(z.powi(0), c64::ONE, 0.0));
        assert!(close(z.powi(5) * z.powi(-5), c64::ONE, 1e-13));
    }

    #[test]
    fn ln_inverts_exp() {
        let z = c64::new(0.3, -1.2);
        assert!(close(z.exp().ln(), z, 1e-13));
    }

    #[test]
    fn sum_iterators() {
        let v = vec![c64::new(1.0, 1.0); 10];
        let s: c64 = v.iter().sum();
        assert_eq!(s, c64::new(10.0, 10.0));
        let s2: c64 = v.into_iter().sum();
        assert_eq!(s2, c64::new(10.0, 10.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = c64::from_polar(2.5, 1.1);
        assert!((z.abs() - 2.5).abs() < 1e-14);
        assert!((z.arg() - 1.1).abs() < 1e-14);
    }
}
