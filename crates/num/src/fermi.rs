//! Fermi–Dirac statistics with overflow-safe evaluation.

/// Numerically safe `ln(1 + e^x)`.
///
/// For large positive `x` returns `x + e^{-x}`-accurate value without
/// overflowing; for large negative `x` returns `e^x` to full precision.
#[inline]
pub fn log1p_exp(x: f64) -> f64 {
    if x > 35.0 {
        // ln(1+e^x) = x + ln(1+e^-x) ≈ x + e^-x
        x + (-x).exp()
    } else if x < -35.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Fermi–Dirac occupation `f(E) = 1 / (1 + exp((E - mu)/kT))`.
///
/// `kt` must be positive; the function saturates cleanly to 0/1 for
/// arguments far from the chemical potential instead of overflowing.
#[inline]
pub fn fermi(e: f64, mu: f64, kt: f64) -> f64 {
    let x = (e - mu) / kt;
    if x > 35.0 {
        (-x).exp() // ≈ e^{-x}, avoids 1/(1+huge)
    } else if x < -35.0 {
        1.0 - x.exp()
    } else {
        1.0 / (1.0 + x.exp())
    }
}

/// Derivative `∂f/∂E = -1/(4 kT) sech²((E-mu)/2kT)` (always ≤ 0).
#[inline]
pub fn dfermi_de(e: f64, mu: f64, kt: f64) -> f64 {
    let x = (e - mu) / (2.0 * kt);
    if x.abs() > 350.0 {
        return 0.0;
    }
    let sech = 1.0 / x.cosh();
    -sech * sech / (4.0 * kt)
}

/// Fermi–Dirac integral of order 1/2 (normalized to the Gamma function,
/// `F_{1/2}(η) = (2/√π) ∫₀^∞ √x/(1+e^{x-η}) dx`), used by the semiclassical
/// charge model in the Poisson solver.
///
/// Uses the Bednarczyk–Bednarczyk analytic approximation, accurate to ~0.4%
/// over all η — more than sufficient for an initial-guess charge model.
pub fn fermi_half(eta: f64) -> f64 {
    // F_{1/2}(η) ≈ 1/(e^{-η} + 3√π/4 · ν^{-3/8}),  ν = η⁴ + 33.6η(1 − 0.68 e^{-0.17(η+1)²}) + 50
    let nu = eta.powi(4) + 33.6 * eta * (1.0 - 0.68 * (-0.17 * (eta + 1.0).powi(2)).exp()) + 50.0;
    let a = 3.0 * std::f64::consts::PI.sqrt() / 4.0 * nu.powf(-0.375);
    1.0 / ((-eta).exp() + a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::KT_ROOM;

    #[test]
    fn fermi_limits() {
        assert!((fermi(-10.0, 0.0, KT_ROOM) - 1.0).abs() < 1e-12);
        assert!(fermi(10.0, 0.0, KT_ROOM) < 1e-12);
        assert!((fermi(0.0, 0.0, KT_ROOM) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn fermi_is_monotone_decreasing() {
        let mut prev = 2.0;
        for i in 0..200 {
            let e = -1.0 + 0.01 * i as f64;
            let f = fermi(e, 0.0, KT_ROOM);
            assert!(f <= prev);
            prev = f;
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let (mu, kt) = (0.1, KT_ROOM);
        for &e in &[-0.2, 0.0, 0.1, 0.3] {
            let h = 1e-6;
            let fd = (fermi(e + h, mu, kt) - fermi(e - h, mu, kt)) / (2.0 * h);
            let an = dfermi_de(e, mu, kt);
            assert!(
                (fd - an).abs() < 1e-6 * (1.0 + an.abs()),
                "e={e}: {fd} vs {an}"
            );
        }
    }

    #[test]
    fn no_overflow_far_from_mu() {
        assert!(fermi(1e6, 0.0, KT_ROOM).is_finite());
        assert!(fermi(-1e6, 0.0, KT_ROOM).is_finite());
        assert!(dfermi_de(1e6, 0.0, KT_ROOM) == 0.0);
    }

    #[test]
    fn log1p_exp_limits() {
        assert!((log1p_exp(0.0) - 2.0_f64.ln()).abs() < 1e-15);
        assert!((log1p_exp(100.0) - 100.0).abs() < 1e-12);
        assert!(log1p_exp(-100.0) < 1e-40);
        assert!(log1p_exp(-100.0) > 0.0);
    }

    #[test]
    fn fermi_half_limits() {
        // Non-degenerate limit: F_{1/2}(η) → e^η for η ≪ 0.
        for &eta in &[-8.0, -6.0, -4.0] {
            let f: f64 = fermi_half(eta);
            assert!((f / eta.exp() - 1.0).abs() < 0.02, "eta={eta}");
        }
        // Degenerate limit: F_{1/2}(η) → (4/3√π) η^{3/2}.
        let eta: f64 = 30.0;
        let deg = 4.0 / (3.0 * std::f64::consts::PI.sqrt()) * eta.powf(1.5);
        assert!((fermi_half(eta) / deg - 1.0).abs() < 0.02);
    }
}
