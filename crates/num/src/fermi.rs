//! Fermi–Dirac statistics with overflow-safe evaluation.

/// Numerically safe `ln(1 + e^x)`.
///
/// Branches at 0, where both forms are exact: the exponential that feeds
/// `ln_1p` is always `≤ 1`, so nothing overflows and the result matches
/// the mathematical value to 1 ulp on both sides of the branch point.
#[inline]
pub fn log1p_exp(x: f64) -> f64 {
    if x > 0.0 {
        // ln(1+e^x) = x + ln(1+e^-x)
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

/// Fermi–Dirac occupation `f(E) = 1 / (1 + exp((E - mu)/kT))`.
///
/// `kt` must be positive. Branches at the symmetry point `x = 0` using the
/// complementary form `e^{-x}/(1+e^{-x})` for `x > 0`: the exponential in
/// play is always `≤ 1`, so the function saturates cleanly to 0/1 far from
/// the chemical potential (no overflow, no `1 - tiny` cancellation) and
/// agrees with the direct `1/(1+e^x)` form to 1 ulp everywhere the latter
/// is representable — the historical `±35` branch seams are gone (the old
/// `x > 35 ⇒ e^{-x}` arm was off by up to 4 ulp just past the seam).
#[inline]
pub fn fermi(e: f64, mu: f64, kt: f64) -> f64 {
    let x = (e - mu) / kt;
    if x > 0.0 {
        let ex = (-x).exp();
        ex / (1.0 + ex)
    } else {
        1.0 / (1.0 + x.exp())
    }
}

/// Derivative `∂f/∂E = -1/(4 kT) sech²((E-mu)/2kT)` (always ≤ 0).
#[inline]
pub fn dfermi_de(e: f64, mu: f64, kt: f64) -> f64 {
    let x = (e - mu) / (2.0 * kt);
    if x.abs() > 350.0 {
        return 0.0;
    }
    let sech = 1.0 / x.cosh();
    -sech * sech / (4.0 * kt)
}

/// Fermi–Dirac integral of order 1/2 (normalized to the Gamma function,
/// `F_{1/2}(η) = (2/√π) ∫₀^∞ √x/(1+e^{x-η}) dx`), used by the semiclassical
/// charge model in the Poisson solver.
///
/// Uses the Bednarczyk–Bednarczyk analytic approximation, accurate to ~0.4%
/// over all η — more than sufficient for an initial-guess charge model.
pub fn fermi_half(eta: f64) -> f64 {
    // F_{1/2}(η) ≈ 1/(e^{-η} + 3√π/4 · ν^{-3/8}),  ν = η⁴ + 33.6η(1 − 0.68 e^{-0.17(η+1)²}) + 50
    let nu = eta.powi(4) + 33.6 * eta * (1.0 - 0.68 * (-0.17 * (eta + 1.0).powi(2)).exp()) + 50.0;
    let a = 3.0 * std::f64::consts::PI.sqrt() / 4.0 * nu.powf(-0.375);
    1.0 / ((-eta).exp() + a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::KT_ROOM;

    #[test]
    fn fermi_limits() {
        assert!((fermi(-10.0, 0.0, KT_ROOM) - 1.0).abs() < 1e-12);
        assert!(fermi(10.0, 0.0, KT_ROOM) < 1e-12);
        assert!((fermi(0.0, 0.0, KT_ROOM) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn fermi_is_monotone_decreasing() {
        let mut prev = 2.0;
        for i in 0..200 {
            let e = -1.0 + 0.01 * i as f64;
            let f = fermi(e, 0.0, KT_ROOM);
            assert!(f <= prev);
            prev = f;
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let (mu, kt) = (0.1, KT_ROOM);
        for &e in &[-0.2, 0.0, 0.1, 0.3] {
            let h = 1e-6;
            let fd = (fermi(e + h, mu, kt) - fermi(e - h, mu, kt)) / (2.0 * h);
            let an = dfermi_de(e, mu, kt);
            assert!(
                (fd - an).abs() < 1e-6 * (1.0 + an.abs()),
                "e={e}: {fd} vs {an}"
            );
        }
    }

    /// Ulp distance between two finite same-sign doubles.
    fn ulp_diff(a: f64, b: f64) -> u64 {
        (a.to_bits() as i64).abs_diff(b.to_bits() as i64)
    }

    /// Reduced-argument reference: the direct textbook form, representable
    /// for |x| ≤ ~709.
    fn direct(x: f64) -> f64 {
        1.0 / (1.0 + x.exp())
    }

    #[test]
    fn fermi_agrees_with_direct_form_across_former_seams() {
        let policy = crate::tolerance::policy().expect("repo policy loads");
        let seam_ulp = policy
            .bound(
                "fermi.seam",
                crate::tolerance::DispatchLeg::Any,
                crate::tolerance::BoundKind::Ulp,
            )
            .expect("fermi.seam entry") as u64;
        // Both sides of each historical ±35 branch cut — the cuts exactly,
        // their bit-adjacent neighbors, and a dense window around each.
        // (Away from the seams the two stable forms may legitimately land
        // a few ulp apart while each stays within ~1 ulp of the true
        // value; the 1-ulp contract is specifically that no branch seam
        // introduces a jump, which is what the old `x > 35` arm did.)
        let mut probes = vec![
            35.0,
            35.0_f64.next_up(),
            35.0_f64.next_down(),
            -35.0,
            (-35.0_f64).next_up(),
            (-35.0_f64).next_down(),
            0.0,
        ];
        for i in -1000..=1000 {
            probes.push(35.0 + i as f64 * 1e-6);
            probes.push(-35.0 + i as f64 * 1e-6);
        }
        for &x in &probes {
            let f = fermi(x, 0.0, 1.0);
            let d = ulp_diff(f, direct(x));
            assert!(
                d <= seam_ulp,
                "x = {x}: fermi {f:e} is {d} ulp from the direct form (allowed {seam_ulp})"
            );
        }
    }

    #[test]
    fn fermi_complement_identity() {
        let policy = crate::tolerance::policy().expect("repo policy loads");
        let comp_ulp = policy
            .bound(
                "fermi.complement",
                crate::tolerance::DispatchLeg::Any,
                crate::tolerance::BoundKind::Ulp,
            )
            .expect("fermi.complement entry") as u64;
        for i in -2000..=2000 {
            let x = i as f64 * 0.05;
            let s = fermi(x, 0.0, 1.0) + fermi(-x, 0.0, 1.0);
            assert!(
                ulp_diff(s, 1.0) <= comp_ulp,
                "x = {x}: f(x) + f(-x) = {s:e} off by {} ulp",
                ulp_diff(s, 1.0)
            );
        }
    }

    #[test]
    fn fermi_saturates_exactly() {
        // Far past the seams the losing exponential underflows and the
        // occupation must pin to exactly 0 / exactly 1, not 1 - tiny.
        assert_eq!(fermi(1e6, 0.0, KT_ROOM).to_bits(), 0.0_f64.to_bits());
        assert_eq!(fermi(-1e6, 0.0, KT_ROOM).to_bits(), 1.0_f64.to_bits());
    }

    #[test]
    fn no_overflow_far_from_mu() {
        assert!(fermi(1e6, 0.0, KT_ROOM).is_finite());
        assert!(fermi(-1e6, 0.0, KT_ROOM).is_finite());
        assert!(dfermi_de(1e6, 0.0, KT_ROOM) == 0.0);
    }

    #[test]
    fn log1p_exp_limits() {
        assert!((log1p_exp(0.0) - 2.0_f64.ln()).abs() < 1e-15);
        assert!((log1p_exp(100.0) - 100.0).abs() < 1e-12);
        assert!(log1p_exp(-100.0) < 1e-40);
        assert!(log1p_exp(-100.0) > 0.0);
    }

    #[test]
    fn fermi_half_limits() {
        // Non-degenerate limit: F_{1/2}(η) → e^η for η ≪ 0.
        for &eta in &[-8.0, -6.0, -4.0] {
            let f: f64 = fermi_half(eta);
            assert!((f / eta.exp() - 1.0).abs() < 0.02, "eta={eta}");
        }
        // Degenerate limit: F_{1/2}(η) → (4/3√π) η^{3/2}.
        let eta: f64 = 30.0;
        let deg = 4.0 / (3.0 * std::f64::consts::PI.sqrt()) * eta.powf(1.5);
        assert!((fermi_half(eta) / deg - 1.0).abs() < 0.02);
    }
}
