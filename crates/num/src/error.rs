//! Typed errors and recovery accounting for the whole solver stack.
//!
//! The production simulator sustains long sweeps precisely because a point
//! failure — one singular pivot block, one non-converged lead at one energy
//! — stays local to its (bias, k, E) task instead of aborting the job.
//! [`OmenError`] is the typed currency every solver layer speaks, and
//! [`SweepReport`] is the per-sweep ledger of what was solved, retried,
//! recovered, or abandoned.

use std::fmt;

/// Result alias used across the solver stack.
pub type OmenResult<T> = Result<T, OmenError>;

/// Sentinel for "energy unknown at this layer" (filled in by the transport
/// driver via [`OmenError::with_energy`]).
pub const ENERGY_UNKNOWN: f64 = f64::NAN;

/// Typed failure of any solver-stack operation.
#[derive(Debug, Clone, PartialEq)]
pub enum OmenError {
    /// A diagonal pivot block was singular to working precision (even after
    /// any regularization the calling policy allowed).
    SingularBlock {
        /// Slab/block index in the block-tridiagonal system.
        block: usize,
        /// Energy (eV) of the transport point, `NaN` when not yet known.
        energy: f64,
        /// Pivot index inside the block where elimination broke down.
        pivot: usize,
        /// Magnitude of the failing pivot.
        magnitude: f64,
    },
    /// Sancho–Rubio decimation did not converge within its iteration bound.
    LeadNotConverged {
        /// Energy (eV) at which the lead was evaluated.
        energy: f64,
        /// Iterations performed before giving up.
        iters: usize,
    },
    /// Operands with incompatible shapes reached a kernel.
    ShapeMismatch {
        /// Which operation rejected its operands.
        context: &'static str,
        /// Expected (rows, cols).
        expected: (usize, usize),
        /// Received (rows, cols).
        got: (usize, usize),
    },
    /// A rank of a distributed run failed (panic or error).
    RankFailed {
        /// Rank index in the world communicator.
        rank: usize,
        /// Human-readable failure description.
        detail: String,
    },
    /// The SPMD collective schedule diverged: a member of a communicator
    /// entered a collective whose fingerprint (op kind, communicator id,
    /// op counter, payload length) does not match the root's. Raised on
    /// *every* member of the communicator within one collective round.
    ScheduleDivergence {
        /// Global rank whose fingerprint disagreed with the root's.
        rank: usize,
        /// The root's fingerprint, e.g. `bcast#2 comm=1 len=0`.
        expected: String,
        /// The divergent rank's fingerprint.
        got: String,
    },
    /// A blocking receive waited past its bound: the peer died or the
    /// communication schedule diverged outside any collective.
    RecvTimeout {
        /// Rank that was blocked in the receive.
        rank: usize,
        /// Source rank the receive was matching.
        from: usize,
        /// Tag the receive was matching.
        tag: u64,
        /// How long the receive waited (ms).
        waited_ms: u64,
        /// Received-but-unconsumed messages sitting in the out-of-order
        /// buffer at the time of the timeout — nonzero values point at a
        /// schedule divergence rather than a dead peer.
        pending: usize,
    },
    /// A rank's message channel closed while it was blocked in a receive
    /// (every peer's sender dropped — the runtime is tearing down).
    ChannelClosed {
        /// Rank that was blocked in the receive.
        rank: usize,
        /// Source rank the receive was matching.
        from: usize,
        /// Tag the receive was matching.
        tag: u64,
        /// Received-but-unconsumed messages in the out-of-order buffer.
        pending: usize,
    },
    /// A rank-message payload could not be decoded.
    Deserialize {
        /// Which decoder rejected the payload.
        context: &'static str,
    },
    /// An `OMEN_*` environment variable held a value the policy layer
    /// cannot honor — unparsable, out of range, or requesting hardware the
    /// machine does not have. Raised instead of silently defaulting, so a
    /// typo'd `OMEN_THREADS=fuor` never ships an unattributable benchmark.
    InvalidEnv {
        /// Variable name (`OMEN_THREADS`, `OMEN_SIMD`).
        var: &'static str,
        /// The rejected raw value.
        value: String,
        /// What would have been accepted.
        expected: &'static str,
    },
    /// The machine-readable tolerance/guardband policy (`TOLERANCES.toml`)
    /// is missing, malformed, or does not cover what a consumer asked for.
    /// Raised instead of falling back to an ad-hoc bound, so a typo'd or
    /// deleted policy entry fails loudly rather than silently loosening a
    /// conformance gate.
    InvalidPolicy {
        /// File (or logical source) of the policy text.
        source: String,
        /// 1-based line of the offending entry, 0 for whole-document
        /// problems (missing file, missing schema, lookup misses).
        line: usize,
        /// What is wrong.
        detail: String,
    },
    /// A committed benchmark baseline (`BENCH_*.json`) could not be
    /// decoded: wrong schema version, malformed record, or unreadable
    /// file. Raised instead of silently dropping records so a stale or
    /// corrupt baseline never masquerades as an empty one.
    InvalidBaseline {
        /// Path of the baseline file.
        path: String,
        /// What is wrong (includes the found-vs-expected schema when the
        /// version does not match).
        detail: String,
    },
    /// A non-finite or negative duration reached the scheduler's cost
    /// model (e.g. a corrupt wire-encoded timing). Rejected instead of
    /// folded into the EWMA, where a single NaN would poison every later
    /// LPT hand-out decision.
    NonFiniteCost {
        /// Work-unit index whose observation was rejected.
        unit: usize,
        /// The rejected seconds value.
        value: f64,
    },
    /// A wire-protocol frame or payload violated the `omen-serve` framing
    /// contract: truncated header, bad magic, unsupported version, a
    /// length prefix past the frame-size cap, an unknown frame kind, or a
    /// connection that died mid-frame. Raised instead of a panic or a hang
    /// so one garbage client never takes the daemon down.
    Protocol {
        /// Which decoder/validator rejected the bytes.
        context: &'static str,
        /// What was wrong (includes the offending values).
        detail: String,
    },
    /// The service job queue is at capacity: the request was rejected
    /// up-front with the observed depth instead of being dropped silently
    /// or buffered without bound. Clients are expected to retry with
    /// backoff.
    Busy {
        /// Jobs queued (not yet running) when the request arrived.
        queue_depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// A matrix entry falls outside the block-tridiagonal envelope of the
    /// given slab partition (non-nearest-neighbor coupling).
    InvalidPartition {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Slab containing the row.
        slab_row: usize,
        /// Slab containing the column.
        slab_col: usize,
    },
}

impl OmenError {
    /// Fills in the energy on variants that carry one but were raised below
    /// the layer that knows it (e.g. a singular block inside a solver).
    #[must_use]
    pub fn with_energy(self, e: f64) -> OmenError {
        match self {
            OmenError::SingularBlock {
                block,
                energy,
                pivot,
                magnitude,
            } if energy.is_nan() => OmenError::SingularBlock {
                block,
                energy: e,
                pivot,
                magnitude,
            },
            other => other,
        }
    }

    /// The energy this error is attached to, when known.
    pub fn energy(&self) -> Option<f64> {
        match self {
            OmenError::SingularBlock { energy, .. }
            | OmenError::LeadNotConverged { energy, .. }
                if !energy.is_nan() =>
            {
                Some(*energy)
            }
            _ => None,
        }
    }
}

impl fmt::Display for OmenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmenError::SingularBlock {
                block,
                energy,
                pivot,
                magnitude,
            } => {
                if energy.is_nan() {
                    write!(
                        f,
                        "singular diagonal block {block} (pivot {pivot}, |p| = {magnitude:.3e})"
                    )
                } else {
                    write!(
                        f,
                        "singular diagonal block {block} at E = {energy} eV \
                         (pivot {pivot}, |p| = {magnitude:.3e})"
                    )
                }
            }
            OmenError::LeadNotConverged { energy, iters } => {
                write!(
                    f,
                    "Sancho-Rubio lead not converged at E = {energy} eV after {iters} iterations"
                )
            }
            OmenError::ShapeMismatch {
                context,
                expected,
                got,
            } => {
                write!(
                    f,
                    "shape mismatch in {context}: expected {}x{}, got {}x{}",
                    expected.0, expected.1, got.0, got.1
                )
            }
            OmenError::RankFailed { rank, detail } => {
                write!(f, "rank {rank} failed: {detail}")
            }
            OmenError::ScheduleDivergence {
                rank,
                expected,
                got,
            } => {
                write!(
                    f,
                    "collective schedule divergence: rank {rank} entered {got}, \
                     root expected {expected}"
                )
            }
            OmenError::RecvTimeout {
                rank,
                from,
                tag,
                waited_ms,
                pending,
            } => {
                write!(
                    f,
                    "rank {rank} recv(from = {from}, tag = {tag:#x}) timed out after \
                     {waited_ms} ms (peer dead or schedule divergence; {pending} \
                     unconsumed messages pending)"
                )
            }
            OmenError::ChannelClosed {
                rank,
                from,
                tag,
                pending,
            } => {
                write!(
                    f,
                    "rank {rank} channel closed while receiving (from = {from}, \
                     tag = {tag:#x}, {pending} unconsumed messages pending)"
                )
            }
            OmenError::Deserialize { context } => {
                write!(f, "malformed rank-message payload in {context}")
            }
            OmenError::InvalidEnv {
                var,
                value,
                expected,
            } => {
                write!(f, "invalid {var}={value:?}: expected {expected}")
            }
            OmenError::InvalidPolicy {
                source,
                line,
                detail,
            } => {
                if *line == 0 {
                    write!(f, "invalid tolerance policy {source}: {detail}")
                } else {
                    write!(f, "invalid tolerance policy {source}:{line}: {detail}")
                }
            }
            OmenError::InvalidBaseline { path, detail } => {
                write!(f, "invalid bench baseline {path}: {detail}")
            }
            OmenError::NonFiniteCost { unit, value } => {
                write!(
                    f,
                    "rejected cost observation for unit {unit}: {value} is not a \
                     finite non-negative duration"
                )
            }
            OmenError::Protocol { context, detail } => {
                write!(f, "protocol violation in {context}: {detail}")
            }
            OmenError::Busy {
                queue_depth,
                capacity,
            } => {
                write!(
                    f,
                    "service busy: job queue at {queue_depth}/{capacity} — retry with backoff"
                )
            }
            OmenError::InvalidPartition {
                row,
                col,
                slab_row,
                slab_col,
            } => {
                write!(
                    f,
                    "entry ({row},{col}) spans non-adjacent slabs {slab_row},{slab_col}: \
                     slab partition incompatible with nearest-neighbor coupling"
                )
            }
        }
    }
}

impl std::error::Error for OmenError {}

/// One abandoned point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedPoint {
    /// Energy (eV) of the abandoned point (for bias sweeps, the bias value).
    pub energy: f64,
    /// Why it was abandoned.
    pub error: OmenError,
}

/// Per-sweep fault ledger: how many points solved cleanly, how many retry
/// attempts the recovery policies spent, how many points only succeeded
/// because of a recovery, and which points were abandoned.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepReport {
    /// Points solved (including recovered ones).
    pub solved: usize,
    /// Total recovery attempts spent across the sweep (pivot
    /// regularizations, lead energy nudges).
    pub retried: usize,
    /// Points that succeeded only after at least one recovery attempt.
    pub recovered: usize,
    /// Points abandoned after recovery was exhausted.
    pub failed: Vec<FailedPoint>,
}

impl SweepReport {
    /// Records a point solved with `retries` recovery attempts.
    pub fn record_solved(&mut self, retries: usize) {
        self.solved += 1;
        self.retried += retries;
        if retries > 0 {
            self.recovered += 1;
        }
    }

    /// Records an abandoned point.
    pub fn record_failed(&mut self, energy: f64, error: OmenError) {
        self.failed.push(FailedPoint { energy, error });
    }

    /// Total points attempted.
    pub fn attempted(&self) -> usize {
        self.solved + self.failed.len()
    }

    /// True when every attempted point solved cleanly on the first try.
    pub fn is_clean(&self) -> bool {
        self.failed.is_empty() && self.retried == 0
    }

    /// Folds another report into this one (k-point / bias aggregation).
    pub fn merge(&mut self, other: &SweepReport) {
        self.solved += other.solved;
        self.retried += other.retried;
        self.recovered += other.recovered;
        self.failed.extend(other.failed.iter().cloned());
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} solved ({} recovered, {} retries), {} failed",
            self.solved,
            self.recovered,
            self.retried,
            self.failed.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_energy_fills_only_unknown() {
        let e = OmenError::SingularBlock {
            block: 3,
            energy: ENERGY_UNKNOWN,
            pivot: 1,
            magnitude: 0.0,
        };
        match e.with_energy(0.5) {
            OmenError::SingularBlock { energy, .. } => assert_eq!(energy, 0.5),
            _ => unreachable!(),
        }
        let known = OmenError::SingularBlock {
            block: 3,
            energy: 1.25,
            pivot: 1,
            magnitude: 0.0,
        };
        match known.with_energy(0.5) {
            OmenError::SingularBlock { energy, .. } => assert_eq!(energy, 1.25),
            _ => unreachable!(),
        }
    }

    #[test]
    fn report_accounting() {
        let mut r = SweepReport::default();
        r.record_solved(0);
        r.record_solved(2);
        r.record_failed(
            0.7,
            OmenError::LeadNotConverged {
                energy: 0.7,
                iters: 200,
            },
        );
        assert_eq!(r.solved, 2);
        assert_eq!(r.retried, 2);
        assert_eq!(r.recovered, 1);
        assert_eq!(r.attempted(), 3);
        assert!(!r.is_clean());

        let mut total = SweepReport::default();
        total.merge(&r);
        total.merge(&r);
        assert_eq!(total.solved, 4);
        assert_eq!(total.failed.len(), 2);
    }

    #[test]
    fn comm_error_displays() {
        let d = OmenError::ScheduleDivergence {
            rank: 3,
            expected: "bcast#2 comm=1 len=0".into(),
            got: "allreduce#2 comm=1 len=8".into(),
        };
        let s = d.to_string();
        assert!(s.contains("rank 3"));
        assert!(s.contains("bcast#2"));
        assert!(s.contains("allreduce#2"));
        let t = OmenError::RecvTimeout {
            rank: 1,
            from: 0,
            tag: 0x10,
            waited_ms: 250,
            pending: 2,
        };
        let s = t.to_string();
        assert!(s.contains("250 ms"));
        assert!(s.contains("2 unconsumed"));
        let c = OmenError::ChannelClosed {
            rank: 0,
            from: 1,
            tag: 7,
            pending: 0,
        };
        assert!(c.to_string().contains("channel closed"));
    }

    #[test]
    fn invalid_env_displays_var_and_value() {
        let e = OmenError::InvalidEnv {
            var: "OMEN_SIMD",
            value: "maybe".into(),
            expected: "0, 1, or unset",
        };
        let s = e.to_string();
        assert!(s.contains("OMEN_SIMD"));
        assert!(s.contains("maybe"));
        assert!(s.contains("0, 1, or unset"));
    }

    #[test]
    fn policy_and_baseline_errors_display() {
        let p = OmenError::InvalidPolicy {
            source: "TOLERANCES.toml".into(),
            line: 12,
            detail: "missing rationale".into(),
        };
        let s = p.to_string();
        assert!(s.contains("TOLERANCES.toml:12"));
        assert!(s.contains("missing rationale"));
        let p0 = OmenError::InvalidPolicy {
            source: "TOLERANCES.toml".into(),
            line: 0,
            detail: "no entry for op \"gemm\"".into(),
        };
        let s = p0.to_string();
        assert!(s.contains("TOLERANCES.toml: no entry"));
        assert!(!s.contains(":0:"));
        let b = OmenError::InvalidBaseline {
            path: "BENCH_kernels.json".into(),
            detail: "schema \"v9\" (expected \"omen-bench-kernels-v1\")".into(),
        };
        let s = b.to_string();
        assert!(s.contains("BENCH_kernels.json"));
        assert!(s.contains("expected"));
        let c = OmenError::NonFiniteCost {
            unit: 7,
            value: f64::NAN,
        };
        let s = c.to_string();
        assert!(s.contains("unit 7"));
        assert!(s.contains("NaN"));
    }

    #[test]
    fn protocol_and_busy_errors_display() {
        let p = OmenError::Protocol {
            context: "frame header",
            detail: "bad magic 0xdeadbeef (expected \"OMSV\")".into(),
        };
        let s = p.to_string();
        assert!(s.contains("frame header"));
        assert!(s.contains("0xdeadbeef"));
        let b = OmenError::Busy {
            queue_depth: 64,
            capacity: 64,
        };
        let s = b.to_string();
        assert!(s.contains("64/64"));
        assert!(s.contains("retry"));
    }

    #[test]
    fn display_formats() {
        let e = OmenError::SingularBlock {
            block: 2,
            energy: 0.4,
            pivot: 0,
            magnitude: 1e-301,
        };
        assert!(e.to_string().contains("block 2"));
        assert!(e.to_string().contains("0.4"));
        let u = OmenError::SingularBlock {
            block: 2,
            energy: ENERGY_UNKNOWN,
            pivot: 0,
            magnitude: 0.0,
        };
        assert!(!u.to_string().contains("NaN"));
    }
}
