//! Quadrature for energy integration of transmission and spectral densities.

/// Composite trapezoid rule over tabulated samples on an arbitrary sorted
/// grid. Returns 0 for fewer than two points.
pub fn trapezoid(x: &[f64], f: &[f64]) -> f64 {
    assert_eq!(x.len(), f.len(), "grid/sample length mismatch");
    let mut acc = 0.0;
    for i in 1..x.len() {
        acc += 0.5 * (f[i] + f[i - 1]) * (x[i] - x[i - 1]);
    }
    acc
}

/// Adaptive Simpson integration of `f` on `[a, b]` to absolute tolerance
/// `tol`, with a recursion-depth cap that prevents runaway subdivision on
/// discontinuous integrands.
pub fn adaptive_simpson<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> f64 {
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(a, b, fa, fm, fb);
    simpson_rec(&mut f, a, b, fa, fm, fb, whole, tol, 20)
}

#[inline]
fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_rec<F: FnMut(f64) -> f64>(
    f: &mut F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        simpson_rec(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)
            + simpson_rec(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)
    }
}

/// Gauss–Legendre nodes and weights on `[-1, 1]` for `n` points, computed by
/// Newton iteration on the Legendre recurrence. Used for transverse-momentum
/// integration where endpoint clustering is undesirable.
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1);
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // Initial guess (Chebyshev-like).
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut dp = 0.0;
        for _ in 0..100 {
            // Legendre P_n(x) and derivative via recurrence.
            let mut p0 = 1.0;
            let mut p1 = x;
            for k in 2..=n {
                let p2 = ((2 * k - 1) as f64 * x * p1 - (k - 1) as f64 * p0) / k as f64;
                p0 = p1;
                p1 = p2;
            }
            dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
            let dx = p1 / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        nodes[i] = -x;
        nodes[n - 1 - i] = x;
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        weights[i] = w;
        weights[n - 1 - i] = w;
    }
    if n % 2 == 1 {
        nodes[n / 2] = 0.0;
    }
    (nodes, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_linear_exact() {
        let x = crate::grid::linspace(0.0, 2.0, 7);
        let f: Vec<f64> = x.iter().map(|&v| 2.0 * v + 1.0).collect();
        assert!((trapezoid(&x, &f) - 6.0).abs() < 1e-14);
    }

    #[test]
    fn trapezoid_nonuniform_grid() {
        let x = vec![0.0, 0.1, 0.5, 1.0];
        let f: Vec<f64> = x.to_vec();
        assert!((trapezoid(&x, &f) - 0.5).abs() < 1e-14);
    }

    #[test]
    fn simpson_polynomial_exact() {
        // Simpson is exact for cubics.
        let v = adaptive_simpson(|x| x * x * x - 2.0 * x + 1.0, -1.0, 3.0, 1e-12);
        let exact = |x: f64| 0.25 * x.powi(4) - x * x + x;
        assert!((v - (exact(3.0) - exact(-1.0))).abs() < 1e-10);
    }

    #[test]
    fn simpson_oscillatory() {
        let v = adaptive_simpson(|x| (10.0 * x).sin(), 0.0, std::f64::consts::PI, 1e-10);
        let exact = (1.0 - (10.0 * std::f64::consts::PI).cos()) / 10.0;
        assert!((v - exact).abs() < 1e-8);
    }

    #[test]
    fn simpson_sharp_fermi_window() {
        // The Landauer window f_L - f_R at low temperature: sharp but smooth.
        let kt = 0.002;
        let v = adaptive_simpson(
            |e| crate::fermi::fermi(e, 0.2, kt) - crate::fermi::fermi(e, 0.0, kt),
            -0.5,
            0.7,
            1e-10,
        );
        // Integral of the window equals mu_L - mu_R = 0.2 at any temperature.
        assert!((v - 0.2).abs() < 1e-7, "window integral {v}");
    }

    #[test]
    fn gauss_legendre_orders() {
        for n in [1usize, 2, 3, 5, 8, 16] {
            let (x, w) = gauss_legendre(n);
            // Weights sum to 2, nodes symmetric, integrates x^2 exactly for n>=2.
            assert!((w.iter().sum::<f64>() - 2.0).abs() < 1e-12, "n={n}");
            for i in 0..n {
                assert!((x[i] + x[n - 1 - i]).abs() < 1e-12);
            }
            if n >= 2 {
                let int_x2: f64 = x.iter().zip(&w).map(|(&xi, &wi)| wi * xi * xi).sum();
                assert!((int_x2 - 2.0 / 3.0).abs() < 1e-12, "n={n}");
            }
        }
    }
}
