//! Machine-readable numeric tolerance policy and perf guardbands.
//!
//! Every numeric bound the conformance batteries use — and every
//! throughput guardband the bench gate enforces — lives in one committed
//! artifact, `TOLERANCES.toml` at the repo root, parsed here into a typed
//! [`TolerancePolicy`]. Tests pull bounds through [`test_bound`] instead of
//! hard-coding `1e-12` literals (the `tolerance-literal` lint in
//! `omen-analyze` rejects inline bounds in test files), so loosening a
//! tolerance is always a reviewable one-line diff with a rationale string
//! next to it, never a silent edit buried in an assert.
//!
//! The parser is a dependency-free TOML subset: top-level `key = "value"`
//! pairs, `[[section]]` array-of-tables headers, and `key = value` entries
//! whose values are strings, floats, or booleans. That covers the whole
//! policy schema; anything else is a loud [`OmenError::InvalidPolicy`].
//!
//! Validation is strict by design — unknown op names, missing rationales,
//! non-finite bounds, duplicate entries, and lookups that miss all raise a
//! typed error rather than falling back to a default bound.

use crate::error::{OmenError, OmenResult};
use std::path::Path;
use std::sync::OnceLock;

/// Schema tag the policy document must carry.
pub const POLICY_SCHEMA: &str = "omen-tolerances-v1";

/// Default policy location relative to this crate's manifest
/// (`crates/num`), i.e. the repo root. Compile-time constant, so lookups
/// work from any working directory.
pub const DEFAULT_POLICY_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TOLERANCES.toml");

/// Closed set of operation names the conformance batteries consume. A
/// `[[tolerance]]` entry whose `op` is not listed here is a typo and is
/// rejected at load time.
pub const KNOWN_OPS: &[&str] = &[
    // tests/kernel_conformance.rs
    "gemm.vs_oracle",
    "gemm.cancellation",
    "lu.vs_oracle",
    "lu.reconstruction",
    "lu.pivot_floor",
    // tests/linalg_properties.rs
    "lu.solve_residual",
    "lu.det_multiplicative",
    "eigh.reconstruction",
    "eigh.value_order",
    "qr.reconstruction",
    "qr.orthonormal",
    "geig.trace",
    "gemm.associativity",
    "gemm.adjoint",
    "sparse.matvec",
    "sparse.assembly_order",
    // tests/engine_equivalence.rs
    "engine.chain",
    "engine.si_wire",
    "engine.agnr",
    "engine.utb",
    "engine.spin_orbit",
    "engine.thomas_vs_bcr",
    "engine.selinv_chain",
    "engine.selinv_si_wire",
    "engine.selinv_agnr",
    "engine.selinv_utb",
    "engine.selinv_spin_orbit",
    // tests/selinv_properties.rs
    "selinv.vs_dense",
    // tests/physics_invariants.rs
    "physics.unitarity_slack",
    "physics.reciprocity",
    "physics.sum_rule",
    "physics.hermiticity",
    "physics.wf_vs_rgf",
    "physics.splitsolve_vs_thomas",
    "physics.selinv_reciprocity",
    "physics.selinv_current",
    "physics.selinv_zero_bias",
    "fermi.seam",
    "fermi.complement",
    // tests/end_to_end.rs
    "e2e.rgf_vs_wf",
];

/// Which dispatch path a tolerance entry covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchLeg {
    /// Scalar reference kernels (`OMEN_SIMD=0`).
    Scalar,
    /// AVX2+FMA vectorized kernels (`OMEN_SIMD=1`).
    Avx2Fma,
    /// Bound holds on every path (leg-independent).
    Any,
    /// Bound governs a comparison whose two sides may run on different
    /// paths (e.g. kernel-vs-oracle), i.e. the cross-path contract.
    Cross,
}

impl DispatchLeg {
    fn parse(s: &str) -> Option<DispatchLeg> {
        match s {
            "scalar" => Some(DispatchLeg::Scalar),
            "avx2fma" => Some(DispatchLeg::Avx2Fma),
            "any" => Some(DispatchLeg::Any),
            "cross" => Some(DispatchLeg::Cross),
            _ => None,
        }
    }

    /// Canonical spelling used in `TOLERANCES.toml`.
    pub fn as_str(self) -> &'static str {
        match self {
            DispatchLeg::Scalar => "scalar",
            DispatchLeg::Avx2Fma => "avx2fma",
            DispatchLeg::Any => "any",
            DispatchLeg::Cross => "cross",
        }
    }
}

/// How a bound value is applied by its consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// `|a - b| <= bound * scale` with a consumer-chosen relative scale.
    Relative,
    /// `|a - b| <= bound` (or a plain magnitude threshold).
    Absolute,
    /// Per-term bound against the accumulated magnitude of the summands
    /// (guards catastrophic-cancellation contracts).
    Termwise,
    /// Maximum distance in units in the last place (bound is an integer
    /// ulp count).
    Ulp,
}

impl BoundKind {
    fn parse(s: &str) -> Option<BoundKind> {
        match s {
            "relative" => Some(BoundKind::Relative),
            "absolute" => Some(BoundKind::Absolute),
            "termwise" => Some(BoundKind::Termwise),
            "ulp" => Some(BoundKind::Ulp),
            _ => None,
        }
    }

    /// Canonical spelling used in `TOLERANCES.toml`.
    pub fn as_str(self) -> &'static str {
        match self {
            BoundKind::Relative => "relative",
            BoundKind::Absolute => "absolute",
            BoundKind::Termwise => "termwise",
            BoundKind::Ulp => "ulp",
        }
    }
}

/// One `[[tolerance]]` entry: the bound for `op` on `path`.
#[derive(Debug, Clone, PartialEq)]
pub struct ToleranceEntry {
    /// Operation name (member of [`KNOWN_OPS`]).
    pub op: String,
    /// Dispatch leg the bound covers.
    pub path: DispatchLeg,
    /// How the bound is applied.
    pub kind: BoundKind,
    /// The bound value (finite, positive; integer ≥ 1 for ulp kinds).
    pub bound: f64,
    /// Why this bound is what it is (never empty).
    pub rationale: String,
    /// Source line of the entry header (for error reporting).
    pub line: usize,
}

/// One `[[kernel_guardband]]` entry: the committed-baseline floor for a
/// `(kernel, simd)` group in `BENCH_kernels.json`. A committed record whose
/// throughput falls below `reference_gflops * (1 - guardband)` fails the
/// bench gate until the entry is re-baselined with a new rationale.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelGuardband {
    /// Kernel name as recorded in the baseline (`gemm`, `lu`, ...).
    pub kernel: String,
    /// Which dispatch leg the group covers.
    pub simd: bool,
    /// Slowest committed throughput in the group at baseline time.
    pub reference_gflops: f64,
    /// Allowed fractional drop below the reference (in `(0, 1)`).
    pub guardband: f64,
    /// Why this reference/band is what it is (never empty).
    pub rationale: String,
}

/// One `[[sched_guardband]]` entry: imbalance ceiling for a committed
/// `(case, schedule)` record in `BENCH_sched.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedGuardband {
    /// Workload case name.
    pub case: String,
    /// Schedule name (`static`, `dynamic`).
    pub schedule: String,
    /// Maximum allowed max/mean busy-time imbalance.
    pub max_imbalance: f64,
    /// Optional wall-clock floor: the committed record must be at least
    /// this many times faster than the `static` record of the same
    /// `(case, ranks)` (static wall / this wall ≥ `min_speedup`). Only
    /// meaningful on non-static schedules; ≥ 1.
    pub min_speedup: Option<f64>,
    /// Why this ceiling is what it is (never empty).
    pub rationale: String,
}

/// One `[[kernel_smoke_floor]]` entry: the catastrophic-regression floor a
/// fresh `--smoke` kernel record must clear on CI hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSmokeFloor {
    /// Kernel name.
    pub kernel: String,
    /// Minimum believable throughput for a fresh smoke record.
    pub min_gflops: f64,
    /// Why the floor is set where it is (never empty).
    pub rationale: String,
}

/// One `[[sched_smoke_floor]]` entry: imbalance ceiling for a fresh
/// `--smoke` scheduler record.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedSmokeFloor {
    /// Workload case name.
    pub case: String,
    /// Schedule name.
    pub schedule: String,
    /// Maximum believable imbalance for a fresh smoke record.
    pub max_imbalance: f64,
    /// Why the ceiling is set where it is (never empty).
    pub rationale: String,
}

/// One `[[serve_guardband]]` entry: throughput/dedupe floor for a
/// committed `(case, clients)` record in `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeGuardband {
    /// Service workload case name (`unique-jobs`, `dedupe-storm`).
    pub case: String,
    /// Concurrent client count the record was taken at.
    pub clients: usize,
    /// Committed end-to-end throughput at baseline time (jobs/s).
    pub reference_jobs_per_s: f64,
    /// Allowed fractional drop below the reference (in `(0, 1)`).
    pub guardband: f64,
    /// Minimum believable dedupe hit rate for the case (in `[0, 1]`).
    pub min_dedupe_hit_rate: f64,
    /// Why this reference/band is what it is (never empty).
    pub rationale: String,
}

/// One `[[serve_smoke_floor]]` entry: the catastrophic-regression floor a
/// fresh `--smoke` service record must clear on CI hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSmokeFloor {
    /// Service workload case name.
    pub case: String,
    /// Minimum believable throughput for a fresh smoke record (jobs/s).
    pub min_jobs_per_s: f64,
    /// Why the floor is set where it is (never empty).
    pub rationale: String,
}

/// The parsed, validated policy document.
#[derive(Debug, Clone, PartialEq)]
pub struct TolerancePolicy {
    source: String,
    entries: Vec<ToleranceEntry>,
    /// Committed-baseline kernel guardbands.
    pub kernel_guardbands: Vec<KernelGuardband>,
    /// Committed-baseline scheduler guardbands.
    pub sched_guardbands: Vec<SchedGuardband>,
    /// Fresh-smoke kernel floors.
    pub kernel_smoke_floors: Vec<KernelSmokeFloor>,
    /// Fresh-smoke scheduler floors.
    pub sched_smoke_floors: Vec<SchedSmokeFloor>,
    /// Committed-baseline service guardbands.
    pub serve_guardbands: Vec<ServeGuardband>,
    /// Fresh-smoke service floors.
    pub serve_smoke_floors: Vec<ServeSmokeFloor>,
}

/// Raw scalar value on the right of a `key = value` line.
enum Raw {
    Str(String),
    Num(f64),
    Bool(bool),
}

impl Raw {
    fn type_name(&self) -> &'static str {
        match self {
            Raw::Str(_) => "string",
            Raw::Num(_) => "number",
            Raw::Bool(_) => "boolean",
        }
    }
}

/// One raw `[[section]]` block before typed validation.
struct RawEntry {
    section: String,
    line: usize,
    keys: Vec<(String, Raw, usize)>,
}

fn perr(source: &str, line: usize, detail: impl Into<String>) -> OmenError {
    OmenError::InvalidPolicy {
        source: source.to_string(),
        line,
        detail: detail.into(),
    }
}

fn parse_value(source: &str, line: usize, raw: &str) -> OmenResult<Raw> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(end) = rest.find('"') else {
            return Err(perr(source, line, "unterminated string value"));
        };
        let tail = rest[end + 1..].trim();
        if !tail.is_empty() && !tail.starts_with('#') {
            return Err(perr(
                source,
                line,
                format!("trailing garbage after string value: {tail:?}"),
            ));
        }
        return Ok(Raw::Str(rest[..end].to_string()));
    }
    // Strip a trailing comment from non-string values.
    let bare = raw.split('#').next().unwrap_or("").trim();
    match bare {
        "true" => Ok(Raw::Bool(true)),
        "false" => Ok(Raw::Bool(false)),
        _ => bare.parse::<f64>().map(Raw::Num).map_err(|_| {
            perr(
                source,
                line,
                format!("unparsable value {bare:?} (expected string, number, or bool)"),
            )
        }),
    }
}

/// Typed key extraction from a raw entry.
struct Keys<'a> {
    source: &'a str,
    entry: &'a RawEntry,
    used: Vec<bool>,
}

impl<'a> Keys<'a> {
    fn new(source: &'a str, entry: &'a RawEntry) -> Keys<'a> {
        Keys {
            source,
            entry,
            used: vec![false; entry.keys.len()],
        }
    }

    fn find(&mut self, key: &str) -> OmenResult<(&'a Raw, usize)> {
        for (i, (k, v, line)) in self.entry.keys.iter().enumerate() {
            if k == key {
                self.used[i] = true;
                return Ok((v, *line));
            }
        }
        Err(perr(
            self.source,
            self.entry.line,
            format!("[[{}]] entry is missing key {key:?}", self.entry.section),
        ))
    }

    fn str(&mut self, key: &str) -> OmenResult<String> {
        match self.find(key)? {
            (Raw::Str(s), _) => Ok(s.clone()),
            (other, line) => Err(perr(
                self.source,
                line,
                format!("key {key:?} must be a string, got {}", other.type_name()),
            )),
        }
    }

    fn num(&mut self, key: &str) -> OmenResult<(f64, usize)> {
        match self.find(key)? {
            (Raw::Num(v), line) => Ok((*v, line)),
            (other, line) => Err(perr(
                self.source,
                line,
                format!("key {key:?} must be a number, got {}", other.type_name()),
            )),
        }
    }

    /// Optional numeric key: `None` when the entry simply omits it. A
    /// present key of the wrong type is still a hard error.
    fn num_if_present(&mut self, key: &str) -> OmenResult<Option<(f64, usize)>> {
        if self.entry.keys.iter().any(|(k, _, _)| k == key) {
            self.num(key).map(Some)
        } else {
            Ok(None)
        }
    }

    fn bool(&mut self, key: &str) -> OmenResult<bool> {
        match self.find(key)? {
            (Raw::Bool(v), _) => Ok(*v),
            (other, line) => Err(perr(
                self.source,
                line,
                format!("key {key:?} must be a boolean, got {}", other.type_name()),
            )),
        }
    }

    /// Non-empty rationale string — every policy entry must carry one.
    fn rationale(&mut self) -> OmenResult<String> {
        let r = self.str("rationale")?;
        if r.trim().is_empty() {
            return Err(perr(
                self.source,
                self.entry.line,
                format!("[[{}]] entry has an empty rationale", self.entry.section),
            ));
        }
        Ok(r)
    }

    /// Rejects keys the schema does not define (typo guard).
    fn finish(self) -> OmenResult<()> {
        for (i, (k, _, line)) in self.entry.keys.iter().enumerate() {
            if !self.used[i] {
                return Err(perr(
                    self.source,
                    *line,
                    format!("unknown key {k:?} in [[{}]] entry", self.entry.section),
                ));
            }
        }
        Ok(())
    }
}

/// A client count arrives as a policy number; it must be an exact
/// positive integer to key a `(case, clients)` group.
fn parse_client_count(source: &str, line: usize, v: f64) -> OmenResult<usize> {
    // analyze: allow(float-eq, exact integrality guard — a client count of 2.5 must be rejected, not rounded)
    if !v.is_finite() || v < 1.0 || v.fract() != 0.0 || v > 1e6 {
        return Err(perr(
            source,
            line,
            format!("clients = {v} must be a positive integer"),
        ));
    }
    Ok(v as usize)
}

fn finite_positive(source: &str, line: usize, key: &str, v: f64) -> OmenResult<f64> {
    if !v.is_finite() || v <= 0.0 {
        return Err(perr(
            source,
            line,
            format!("{key} = {v} must be finite and positive"),
        ));
    }
    Ok(v)
}

impl TolerancePolicy {
    /// Parses and validates a policy document.
    ///
    /// # Errors
    ///
    /// Returns [`OmenError::InvalidPolicy`] on syntax errors, a missing or
    /// wrong `schema` tag, unknown sections/keys/ops, non-finite or
    /// non-positive bounds, empty rationales, and duplicate entries.
    pub fn parse(source: &str, text: &str) -> OmenResult<TolerancePolicy> {
        let mut schema: Option<String> = None;
        let mut raws: Vec<RawEntry> = Vec::new();
        for (idx, full) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = full.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[") {
                let Some(name) = header.strip_suffix("]]") else {
                    return Err(perr(source, line_no, format!("malformed header {line:?}")));
                };
                raws.push(RawEntry {
                    section: name.trim().to_string(),
                    line: line_no,
                    keys: Vec::new(),
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(perr(
                    source,
                    line_no,
                    format!("plain [table] headers are not part of the schema: {line:?}"),
                ));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(perr(
                    source,
                    line_no,
                    format!("expected key = value: {line:?}"),
                ));
            };
            let key = key.trim().to_string();
            let value = parse_value(source, line_no, value)?;
            match raws.last_mut() {
                Some(entry) => {
                    if entry.keys.iter().any(|(k, _, _)| *k == key) {
                        return Err(perr(
                            source,
                            line_no,
                            format!("duplicate key {key:?} in [[{}]] entry", entry.section),
                        ));
                    }
                    entry.keys.push((key, value, line_no));
                }
                None => {
                    if key == "schema" {
                        match value {
                            Raw::Str(s) => schema = Some(s),
                            other => {
                                return Err(perr(
                                    source,
                                    line_no,
                                    format!("schema must be a string, got {}", other.type_name()),
                                ))
                            }
                        }
                    } else {
                        return Err(perr(
                            source,
                            line_no,
                            format!("unexpected top-level key {key:?} (only \"schema\")"),
                        ));
                    }
                }
            }
        }
        match schema.as_deref() {
            Some(POLICY_SCHEMA) => {}
            Some(other) => {
                return Err(perr(
                    source,
                    0,
                    format!("schema {other:?} (expected {POLICY_SCHEMA:?})"),
                ))
            }
            None => {
                return Err(perr(
                    source,
                    0,
                    format!("missing schema tag (expected schema = {POLICY_SCHEMA:?})"),
                ))
            }
        }

        let mut policy = TolerancePolicy {
            source: source.to_string(),
            entries: Vec::new(),
            kernel_guardbands: Vec::new(),
            sched_guardbands: Vec::new(),
            kernel_smoke_floors: Vec::new(),
            sched_smoke_floors: Vec::new(),
            serve_guardbands: Vec::new(),
            serve_smoke_floors: Vec::new(),
        };
        for raw in &raws {
            let mut keys = Keys::new(source, raw);
            match raw.section.as_str() {
                "tolerance" => {
                    let op = keys.str("op")?;
                    if !KNOWN_OPS.contains(&op.as_str()) {
                        return Err(perr(
                            source,
                            raw.line,
                            format!("unknown op {op:?} (not in the KNOWN_OPS registry)"),
                        ));
                    }
                    let path_s = keys.str("path")?;
                    let Some(path) = DispatchLeg::parse(&path_s) else {
                        return Err(perr(
                            source,
                            raw.line,
                            format!("unknown path {path_s:?} (expected scalar|avx2fma|any|cross)"),
                        ));
                    };
                    let kind_s = keys.str("kind")?;
                    let Some(kind) = BoundKind::parse(&kind_s) else {
                        return Err(perr(
                            source,
                            raw.line,
                            format!(
                                "unknown kind {kind_s:?} (expected relative|absolute|termwise|ulp)"
                            ),
                        ));
                    };
                    let (bound, bline) = keys.num("bound")?;
                    let bound = finite_positive(source, bline, "bound", bound)?;
                    if kind == BoundKind::Ulp
                        && (bound < 1.0 || (bound - bound.round()).abs() > 0.0)
                    {
                        return Err(perr(
                            source,
                            bline,
                            format!("ulp bound {bound} must be an integer >= 1"),
                        ));
                    }
                    let rationale = keys.rationale()?;
                    keys.finish()?;
                    if policy.entries.iter().any(|e| e.op == op && e.path == path) {
                        return Err(perr(
                            source,
                            raw.line,
                            format!("duplicate tolerance for op {op:?} path {:?}", path.as_str()),
                        ));
                    }
                    policy.entries.push(ToleranceEntry {
                        op,
                        path,
                        kind,
                        bound,
                        rationale,
                        line: raw.line,
                    });
                }
                "kernel_guardband" => {
                    let kernel = keys.str("kernel")?;
                    let simd = keys.bool("simd")?;
                    let (reference_gflops, rline) = keys.num("reference_gflops")?;
                    let reference_gflops =
                        finite_positive(source, rline, "reference_gflops", reference_gflops)?;
                    let (guardband, gline) = keys.num("guardband")?;
                    let guardband = finite_positive(source, gline, "guardband", guardband)?;
                    if guardband >= 1.0 {
                        return Err(perr(
                            source,
                            gline,
                            format!("guardband {guardband} must be < 1 (a fractional drop)"),
                        ));
                    }
                    let rationale = keys.rationale()?;
                    keys.finish()?;
                    if policy
                        .kernel_guardbands
                        .iter()
                        .any(|g| g.kernel == kernel && g.simd == simd)
                    {
                        return Err(perr(
                            source,
                            raw.line,
                            format!("duplicate kernel_guardband for ({kernel:?}, simd={simd})"),
                        ));
                    }
                    policy.kernel_guardbands.push(KernelGuardband {
                        kernel,
                        simd,
                        reference_gflops,
                        guardband,
                        rationale,
                    });
                }
                "sched_guardband" => {
                    let case = keys.str("case")?;
                    let schedule = keys.str("schedule")?;
                    let (max_imbalance, iline) = keys.num("max_imbalance")?;
                    let max_imbalance =
                        finite_positive(source, iline, "max_imbalance", max_imbalance)?;
                    if max_imbalance < 1.0 {
                        return Err(perr(
                            source,
                            iline,
                            format!("max_imbalance {max_imbalance} must be >= 1 (max/mean ratio)"),
                        ));
                    }
                    let min_speedup = match keys.num_if_present("min_speedup")? {
                        None => None,
                        Some((v, sline)) => {
                            let v = finite_positive(source, sline, "min_speedup", v)?;
                            if v < 1.0 {
                                return Err(perr(
                                    source,
                                    sline,
                                    format!(
                                        "min_speedup {v} must be >= 1 \
                                         (static wall / scheduled wall)"
                                    ),
                                ));
                            }
                            if schedule == "static" {
                                return Err(perr(
                                    source,
                                    sline,
                                    "min_speedup compares against the static record and \
                                     cannot appear on the static schedule itself"
                                        .to_string(),
                                ));
                            }
                            Some(v)
                        }
                    };
                    let rationale = keys.rationale()?;
                    keys.finish()?;
                    if policy
                        .sched_guardbands
                        .iter()
                        .any(|g| g.case == case && g.schedule == schedule)
                    {
                        return Err(perr(
                            source,
                            raw.line,
                            format!("duplicate sched_guardband for ({case:?}, {schedule:?})"),
                        ));
                    }
                    policy.sched_guardbands.push(SchedGuardband {
                        case,
                        schedule,
                        max_imbalance,
                        min_speedup,
                        rationale,
                    });
                }
                "kernel_smoke_floor" => {
                    let kernel = keys.str("kernel")?;
                    let (min_gflops, mline) = keys.num("min_gflops")?;
                    let min_gflops = finite_positive(source, mline, "min_gflops", min_gflops)?;
                    let rationale = keys.rationale()?;
                    keys.finish()?;
                    if policy
                        .kernel_smoke_floors
                        .iter()
                        .any(|g| g.kernel == kernel)
                    {
                        return Err(perr(
                            source,
                            raw.line,
                            format!("duplicate kernel_smoke_floor for {kernel:?}"),
                        ));
                    }
                    policy.kernel_smoke_floors.push(KernelSmokeFloor {
                        kernel,
                        min_gflops,
                        rationale,
                    });
                }
                "sched_smoke_floor" => {
                    let case = keys.str("case")?;
                    let schedule = keys.str("schedule")?;
                    let (max_imbalance, iline) = keys.num("max_imbalance")?;
                    let max_imbalance =
                        finite_positive(source, iline, "max_imbalance", max_imbalance)?;
                    let rationale = keys.rationale()?;
                    keys.finish()?;
                    if policy
                        .sched_smoke_floors
                        .iter()
                        .any(|g| g.case == case && g.schedule == schedule)
                    {
                        return Err(perr(
                            source,
                            raw.line,
                            format!("duplicate sched_smoke_floor for ({case:?}, {schedule:?})"),
                        ));
                    }
                    policy.sched_smoke_floors.push(SchedSmokeFloor {
                        case,
                        schedule,
                        max_imbalance,
                        rationale,
                    });
                }
                "serve_guardband" => {
                    let case = keys.str("case")?;
                    let (clients_f, cline) = keys.num("clients")?;
                    let clients = parse_client_count(source, cline, clients_f)?;
                    let (reference_jobs_per_s, rline) = keys.num("reference_jobs_per_s")?;
                    let reference_jobs_per_s = finite_positive(
                        source,
                        rline,
                        "reference_jobs_per_s",
                        reference_jobs_per_s,
                    )?;
                    let (guardband, gline) = keys.num("guardband")?;
                    let guardband = finite_positive(source, gline, "guardband", guardband)?;
                    if guardband >= 1.0 {
                        return Err(perr(
                            source,
                            gline,
                            format!("guardband {guardband} must be < 1 (a fractional drop)"),
                        ));
                    }
                    let (min_dedupe_hit_rate, dline) = keys.num("min_dedupe_hit_rate")?;
                    // Zero is meaningful here (unique-job workloads never
                    // dedupe), so the positivity helper does not apply.
                    if !min_dedupe_hit_rate.is_finite()
                        || !(0.0..=1.0).contains(&min_dedupe_hit_rate)
                    {
                        return Err(perr(
                            source,
                            dline,
                            format!("min_dedupe_hit_rate {min_dedupe_hit_rate} must be in [0, 1]"),
                        ));
                    }
                    let rationale = keys.rationale()?;
                    keys.finish()?;
                    if policy
                        .serve_guardbands
                        .iter()
                        .any(|g| g.case == case && g.clients == clients)
                    {
                        return Err(perr(
                            source,
                            raw.line,
                            format!("duplicate serve_guardband for ({case:?}, clients={clients})"),
                        ));
                    }
                    policy.serve_guardbands.push(ServeGuardband {
                        case,
                        clients,
                        reference_jobs_per_s,
                        guardband,
                        min_dedupe_hit_rate,
                        rationale,
                    });
                }
                "serve_smoke_floor" => {
                    let case = keys.str("case")?;
                    let (min_jobs_per_s, mline) = keys.num("min_jobs_per_s")?;
                    let min_jobs_per_s =
                        finite_positive(source, mline, "min_jobs_per_s", min_jobs_per_s)?;
                    let rationale = keys.rationale()?;
                    keys.finish()?;
                    if policy.serve_smoke_floors.iter().any(|g| g.case == case) {
                        return Err(perr(
                            source,
                            raw.line,
                            format!("duplicate serve_smoke_floor for {case:?}"),
                        ));
                    }
                    policy.serve_smoke_floors.push(ServeSmokeFloor {
                        case,
                        min_jobs_per_s,
                        rationale,
                    });
                }
                other => {
                    return Err(perr(
                        source,
                        raw.line,
                        format!("unknown section [[{other}]]"),
                    ));
                }
            }
        }
        Ok(policy)
    }

    /// Loads and validates the policy at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`OmenError::InvalidPolicy`] when the file cannot be read or
    /// fails any [`TolerancePolicy::parse`] validation.
    pub fn load(path: &Path) -> OmenResult<TolerancePolicy> {
        let source = path.display().to_string();
        let text = std::fs::read_to_string(path)
            .map_err(|e| perr(&source, 0, format!("cannot read policy file: {e}")))?;
        TolerancePolicy::parse(&source, &text)
    }

    /// Loads the repo-root `TOLERANCES.toml`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TolerancePolicy::load`].
    pub fn load_default() -> OmenResult<TolerancePolicy> {
        TolerancePolicy::load(Path::new(DEFAULT_POLICY_PATH))
    }

    /// All validated `[[tolerance]]` entries, in document order.
    pub fn entries(&self) -> &[ToleranceEntry] {
        &self.entries
    }

    /// Resolves the bound for `op` on `leg`: an entry declared for exactly
    /// `leg` wins, otherwise a leg-independent (`path = "any"`) entry.
    /// The entry's declared kind must match `kind` — asking for a relative
    /// bound where the policy declares an absolute one is a consumer bug,
    /// not a fallback case.
    ///
    /// # Errors
    ///
    /// Returns [`OmenError::InvalidPolicy`] when no entry covers
    /// `(op, leg)` or the covering entry's kind differs from `kind`.
    pub fn bound(&self, op: &str, leg: DispatchLeg, kind: BoundKind) -> OmenResult<f64> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.op == op && e.path == leg)
            .or_else(|| {
                self.entries
                    .iter()
                    .find(|e| e.op == op && e.path == DispatchLeg::Any)
            })
            .ok_or_else(|| {
                perr(
                    &self.source,
                    0,
                    format!("no tolerance entry for op {op:?} on leg {:?}", leg.as_str()),
                )
            })?;
        if entry.kind != kind {
            return Err(perr(
                &self.source,
                entry.line,
                format!(
                    "op {op:?} declares a {} bound, consumer requested {}",
                    entry.kind.as_str(),
                    kind.as_str()
                ),
            ));
        }
        Ok(entry.bound)
    }

    /// The committed-baseline guardband for a `(kernel, simd)` group.
    ///
    /// # Errors
    ///
    /// Returns [`OmenError::InvalidPolicy`] when the group has no entry.
    pub fn kernel_guardband(&self, kernel: &str, simd: bool) -> OmenResult<&KernelGuardband> {
        self.kernel_guardbands
            .iter()
            .find(|g| g.kernel == kernel && g.simd == simd)
            .ok_or_else(|| {
                perr(
                    &self.source,
                    0,
                    format!(
                        "no kernel_guardband for ({kernel:?}, simd={simd}) — every committed \
                         bench record needs one"
                    ),
                )
            })
    }

    /// The committed-baseline imbalance ceiling for `(case, schedule)`.
    ///
    /// # Errors
    ///
    /// Returns [`OmenError::InvalidPolicy`] when the pair has no entry.
    pub fn sched_guardband(&self, case: &str, schedule: &str) -> OmenResult<&SchedGuardband> {
        self.sched_guardbands
            .iter()
            .find(|g| g.case == case && g.schedule == schedule)
            .ok_or_else(|| {
                perr(
                    &self.source,
                    0,
                    format!(
                        "no sched_guardband for ({case:?}, {schedule:?}) — every committed \
                         bench record needs one"
                    ),
                )
            })
    }

    /// The fresh-smoke floor for `kernel`.
    ///
    /// # Errors
    ///
    /// Returns [`OmenError::InvalidPolicy`] when the kernel has no entry.
    pub fn kernel_smoke_floor(&self, kernel: &str) -> OmenResult<&KernelSmokeFloor> {
        self.kernel_smoke_floors
            .iter()
            .find(|g| g.kernel == kernel)
            .ok_or_else(|| {
                perr(
                    &self.source,
                    0,
                    format!("no kernel_smoke_floor for {kernel:?}"),
                )
            })
    }

    /// The fresh-smoke imbalance ceiling for `(case, schedule)`.
    ///
    /// # Errors
    ///
    /// Returns [`OmenError::InvalidPolicy`] when the pair has no entry.
    pub fn sched_smoke_floor(&self, case: &str, schedule: &str) -> OmenResult<&SchedSmokeFloor> {
        self.sched_smoke_floors
            .iter()
            .find(|g| g.case == case && g.schedule == schedule)
            .ok_or_else(|| {
                perr(
                    &self.source,
                    0,
                    format!("no sched_smoke_floor for ({case:?}, {schedule:?})"),
                )
            })
    }

    /// The committed-baseline service guardband for `(case, clients)`.
    ///
    /// # Errors
    ///
    /// Returns [`OmenError::InvalidPolicy`] when the pair has no entry.
    pub fn serve_guardband(&self, case: &str, clients: usize) -> OmenResult<&ServeGuardband> {
        self.serve_guardbands
            .iter()
            .find(|g| g.case == case && g.clients == clients)
            .ok_or_else(|| {
                perr(
                    &self.source,
                    0,
                    format!(
                        "no serve_guardband for ({case:?}, clients={clients}) — every committed \
                         bench record needs one"
                    ),
                )
            })
    }

    /// The fresh-smoke throughput floor for a service `case`.
    ///
    /// # Errors
    ///
    /// Returns [`OmenError::InvalidPolicy`] when the case has no entry.
    pub fn serve_smoke_floor(&self, case: &str) -> OmenResult<&ServeSmokeFloor> {
        self.serve_smoke_floors
            .iter()
            .find(|g| g.case == case)
            .ok_or_else(|| {
                perr(
                    &self.source,
                    0,
                    format!("no serve_smoke_floor for {case:?}"),
                )
            })
    }
}

/// The process-wide policy, loaded once from [`DEFAULT_POLICY_PATH`].
///
/// # Errors
///
/// Returns the (cached) [`OmenError::InvalidPolicy`] when the repo-root
/// `TOLERANCES.toml` is missing or invalid.
pub fn policy() -> OmenResult<&'static TolerancePolicy> {
    static POLICY: OnceLock<OmenResult<TolerancePolicy>> = OnceLock::new();
    POLICY
        .get_or_init(TolerancePolicy::load_default)
        .as_ref()
        .map_err(Clone::clone)
}

/// Bound lookup for the integration batteries: resolves `op` on the
/// cross-path leg (the batteries compare quantities that may have been
/// produced on different dispatch paths), falling back to a
/// leg-independent entry.
///
/// # Errors
///
/// Same failure modes as [`policy`] and [`TolerancePolicy::bound`].
pub fn test_bound(op: &str, kind: BoundKind) -> OmenResult<f64> {
    policy()?.bound(op, DispatchLeg::Cross, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(body: &str) -> String {
        format!("schema = \"{POLICY_SCHEMA}\"\n{body}")
    }

    fn entry(op: &str, path: &str, kind: &str, bound: &str) -> String {
        format!(
            "[[tolerance]]\nop = \"{op}\"\npath = \"{path}\"\nkind = \"{kind}\"\n\
             bound = {bound}\nrationale = \"unit test\"\n"
        )
    }

    fn expect_policy_err(text: &str, needle: &str) {
        match TolerancePolicy::parse("test", text) {
            Err(OmenError::InvalidPolicy { detail, .. }) => assert!(
                detail.contains(needle),
                "detail {detail:?} does not mention {needle:?}"
            ),
            other => panic!("expected InvalidPolicy({needle:?}), got {other:?}"),
        }
    }

    #[test]
    fn parses_minimal_document() {
        let text = doc(&entry("gemm.vs_oracle", "cross", "relative", "1e-12"));
        let p = TolerancePolicy::parse("test", &text).unwrap();
        assert_eq!(p.entries().len(), 1);
        let b = p
            .bound("gemm.vs_oracle", DispatchLeg::Cross, BoundKind::Relative)
            .unwrap();
        assert!((b - 1e-12).abs() < f64::MIN_POSITIVE);
    }

    #[test]
    fn any_leg_is_a_fallback_not_an_override() {
        let text = doc(&format!(
            "{}{}",
            entry("gemm.vs_oracle", "any", "relative", "1e-10"),
            entry("gemm.vs_oracle", "cross", "relative", "1e-12"),
        ));
        let p = TolerancePolicy::parse("test", &text).unwrap();
        let cross = p
            .bound("gemm.vs_oracle", DispatchLeg::Cross, BoundKind::Relative)
            .unwrap();
        let scalar = p
            .bound("gemm.vs_oracle", DispatchLeg::Scalar, BoundKind::Relative)
            .unwrap();
        assert!(cross < scalar, "exact leg must win over the any fallback");
    }

    #[test]
    fn rejects_unknown_op_kind_path_and_sections() {
        expect_policy_err(
            &doc(&entry("gemm.warp_drive", "any", "relative", "1e-12")),
            "unknown op",
        );
        expect_policy_err(
            &doc(&entry("gemm.vs_oracle", "gpu", "relative", "1e-12")),
            "unknown path",
        );
        expect_policy_err(
            &doc(&entry("gemm.vs_oracle", "any", "fuzzy", "1e-12")),
            "unknown kind",
        );
        expect_policy_err(&doc("[[quantum_guardband]]\nx = 1\n"), "unknown section");
    }

    #[test]
    fn rejects_bad_bounds_and_missing_rationale() {
        expect_policy_err(
            &doc(&entry("gemm.vs_oracle", "any", "relative", "nan")),
            "finite and positive",
        );
        expect_policy_err(
            &doc(&entry("gemm.vs_oracle", "any", "relative", "-1e-9")),
            "finite and positive",
        );
        expect_policy_err(
            &doc(&entry("fermi.seam", "any", "ulp", "1.5")),
            "integer >= 1",
        );
        let no_rationale = doc("[[tolerance]]\nop = \"gemm.vs_oracle\"\npath = \"any\"\n\
             kind = \"relative\"\nbound = 1e-12\nrationale = \"  \"\n");
        expect_policy_err(&no_rationale, "empty rationale");
        let missing = doc("[[tolerance]]\nop = \"gemm.vs_oracle\"\npath = \"any\"\n\
             kind = \"relative\"\nbound = 1e-12\n");
        expect_policy_err(&missing, "missing key \"rationale\"");
    }

    #[test]
    fn rejects_duplicates_and_unknown_keys() {
        let dup = doc(&format!(
            "{}{}",
            entry("gemm.vs_oracle", "any", "relative", "1e-12"),
            entry("gemm.vs_oracle", "any", "relative", "1e-10"),
        ));
        expect_policy_err(&dup, "duplicate tolerance");
        let extra = doc(
            "[[tolerance]]\nop = \"gemm.vs_oracle\"\npath = \"any\"\nkind = \"relative\"\n\
             bound = 1e-12\nrationale = \"ok\"\nflavor = \"grape\"\n",
        );
        expect_policy_err(&extra, "unknown key \"flavor\"");
    }

    #[test]
    fn rejects_wrong_or_missing_schema() {
        expect_policy_err("schema = \"omen-tolerances-v9\"\n", "expected");
        expect_policy_err(
            &entry("gemm.vs_oracle", "any", "relative", "1e-12"),
            "missing schema",
        );
    }

    #[test]
    fn lookup_misses_are_typed_errors() {
        let p = TolerancePolicy::parse(
            "test",
            &doc(&entry("gemm.vs_oracle", "any", "relative", "1e-12")),
        )
        .unwrap();
        assert!(matches!(
            p.bound("physics.sum_rule", DispatchLeg::Any, BoundKind::Relative),
            Err(OmenError::InvalidPolicy { .. })
        ));
        assert!(matches!(
            p.bound("gemm.vs_oracle", DispatchLeg::Any, BoundKind::Ulp),
            Err(OmenError::InvalidPolicy { .. })
        ));
        assert!(matches!(
            p.kernel_guardband("gemm", false),
            Err(OmenError::InvalidPolicy { .. })
        ));
    }

    #[test]
    fn parses_guardbands_and_floors() {
        let text = doc("[[kernel_guardband]]\nkernel = \"gemm\"\nsimd = false\n\
             reference_gflops = 7.5\nguardband = 0.35\nrationale = \"baseline floor\"\n\
             [[sched_guardband]]\ncase = \"comb\"\nschedule = \"dynamic\"\n\
             max_imbalance = 1.3\nrationale = \"ceiling\"\n\
             [[kernel_smoke_floor]]\nkernel = \"gemm\"\nmin_gflops = 0.05\n\
             rationale = \"catastrophic only\"\n\
             [[sched_smoke_floor]]\ncase = \"comb\"\nschedule = \"dynamic\"\n\
             max_imbalance = 1.9\nrationale = \"two workers\"\n");
        let p = TolerancePolicy::parse("test", &text).unwrap();
        let g = p.kernel_guardband("gemm", false).unwrap();
        assert!(g.reference_gflops > 7.0 && g.guardband < 1.0);
        assert!(p.kernel_guardband("gemm", true).is_err());
        assert!(p.sched_guardband("comb", "dynamic").is_ok());
        assert!(p.kernel_smoke_floor("gemm").is_ok());
        assert!(p.sched_smoke_floor("comb", "dynamic").is_ok());
        let bad_band = doc("[[kernel_guardband]]\nkernel = \"gemm\"\nsimd = false\n\
             reference_gflops = 7.5\nguardband = 1.5\nrationale = \"x\"\n");
        expect_policy_err(&bad_band, "must be < 1");
    }

    #[test]
    fn sched_guardband_min_speedup_is_optional_and_validated() {
        // Absent key parses to None (the resonance-comb style entry above
        // already covers that); a present key must be >= 1 and must not
        // sit on the static schedule.
        let text = doc(
            "[[sched_guardband]]\ncase = \"iv\"\nschedule = \"dynamic\"\n\
             max_imbalance = 1.1\nmin_speedup = 1.05\nrationale = \"curve floor\"\n\
             [[sched_guardband]]\ncase = \"iv\"\nschedule = \"static\"\n\
             max_imbalance = 2.0\nrationale = \"bad baseline\"\n",
        );
        let p = TolerancePolicy::parse("test", &text).unwrap();
        assert_eq!(
            p.sched_guardband("iv", "dynamic").unwrap().min_speedup,
            Some(1.05)
        );
        assert_eq!(p.sched_guardband("iv", "static").unwrap().min_speedup, None);
        let slow = doc(
            "[[sched_guardband]]\ncase = \"iv\"\nschedule = \"dynamic\"\n\
             max_imbalance = 1.1\nmin_speedup = 0.9\nrationale = \"x\"\n",
        );
        expect_policy_err(&slow, "must be >= 1");
        let on_static = doc(
            "[[sched_guardband]]\ncase = \"iv\"\nschedule = \"static\"\n\
             max_imbalance = 2.0\nmin_speedup = 1.1\nrationale = \"x\"\n",
        );
        expect_policy_err(&on_static, "cannot appear on the static schedule");
        let typed = doc(
            "[[sched_guardband]]\ncase = \"iv\"\nschedule = \"dynamic\"\n\
             max_imbalance = 1.1\nmin_speedup = \"fast\"\nrationale = \"x\"\n",
        );
        expect_policy_err(&typed, "must be a number");
    }

    #[test]
    fn parses_serve_guardbands_and_floors() {
        let text = doc("[[serve_guardband]]\ncase = \"unique-jobs\"\nclients = 4\n\
             reference_jobs_per_s = 250.0\nguardband = 0.5\nmin_dedupe_hit_rate = 0.0\n\
             rationale = \"baseline floor\"\n\
             [[serve_guardband]]\ncase = \"dedupe-storm\"\nclients = 4\n\
             reference_jobs_per_s = 900.0\nguardband = 0.5\nmin_dedupe_hit_rate = 0.5\n\
             rationale = \"storm must actually dedupe\"\n\
             [[serve_smoke_floor]]\ncase = \"unique-jobs\"\nmin_jobs_per_s = 5.0\n\
             rationale = \"catastrophic only\"\n");
        let p = TolerancePolicy::parse("test", &text).unwrap();
        let g = p.serve_guardband("unique-jobs", 4).unwrap();
        assert!(g.reference_jobs_per_s > 0.0 && g.guardband < 1.0);
        assert!(g.min_dedupe_hit_rate.abs() < f64::MIN_POSITIVE);
        assert!(
            p.serve_guardband("dedupe-storm", 4)
                .unwrap()
                .min_dedupe_hit_rate
                > 0.4
        );
        assert!(
            p.serve_guardband("unique-jobs", 8).is_err(),
            "clients key distinct"
        );
        assert!(p.serve_smoke_floor("unique-jobs").is_ok());
        assert!(p.serve_smoke_floor("dedupe-storm").is_err());
    }

    #[test]
    fn rejects_bad_serve_entries() {
        let fractional_clients = doc("[[serve_guardband]]\ncase = \"u\"\nclients = 2.5\n\
             reference_jobs_per_s = 1.0\nguardband = 0.5\nmin_dedupe_hit_rate = 0.0\n\
             rationale = \"x\"\n");
        expect_policy_err(&fractional_clients, "positive integer");
        let bad_rate = doc("[[serve_guardband]]\ncase = \"u\"\nclients = 4\n\
             reference_jobs_per_s = 1.0\nguardband = 0.5\nmin_dedupe_hit_rate = 1.5\n\
             rationale = \"x\"\n");
        expect_policy_err(&bad_rate, "must be in [0, 1]");
        let dup = doc(
            "[[serve_smoke_floor]]\ncase = \"u\"\nmin_jobs_per_s = 1.0\n\
             rationale = \"x\"\n[[serve_smoke_floor]]\ncase = \"u\"\nmin_jobs_per_s = 2.0\n\
             rationale = \"x\"\n",
        );
        expect_policy_err(&dup, "duplicate serve_smoke_floor");
    }

    #[test]
    fn default_policy_loads_and_covers_every_known_op() {
        let p = policy().expect("repo-root TOLERANCES.toml must be valid");
        for op in KNOWN_OPS {
            // Every registered op must resolve on the cross leg for *some*
            // kind; probe all four and require at least one hit.
            let hit = [
                BoundKind::Relative,
                BoundKind::Absolute,
                BoundKind::Termwise,
                BoundKind::Ulp,
            ]
            .iter()
            .any(|&k| p.bound(op, DispatchLeg::Cross, k).is_ok());
            assert!(hit, "op {op:?} has no usable policy entry");
        }
        for e in p.entries() {
            assert!(!e.rationale.trim().is_empty(), "op {:?}", e.op);
        }
    }
}
