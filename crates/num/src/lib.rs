//! # omen-num — numeric foundation for the omen-rs workspace
//!
//! Provides the double-precision complex scalar [`c64`] used by every other
//! crate, physical constants in the simulator's unit system (energies in eV,
//! lengths in nm, currents in µA), Fermi–Dirac statistics, and adaptive
//! quadrature used for energy integration of transmission and charge.
//!
//! The workspace deliberately owns its complex type instead of depending on
//! `num-complex`: the dense kernels in `omen-linalg` instrument flop counts
//! with the Gordon-Bell counting convention (complex multiply = 6 real flops,
//! complex add = 2), and owning the scalar keeps that contract local.

pub mod complex;
pub mod constants;
pub mod error;
pub mod fermi;
pub mod grid;
pub mod quad;
pub mod tolerance;

pub use complex::c64;
pub use constants::*;
pub use error::{FailedPoint, OmenError, OmenResult, SweepReport, ENERGY_UNKNOWN};
pub use fermi::{dfermi_de, fermi, log1p_exp};
pub use grid::linspace;
pub use quad::{adaptive_simpson, trapezoid};
pub use tolerance::{BoundKind, DispatchLeg, TolerancePolicy};

/// Approximate equality for floats with absolute tolerance.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Relative-or-absolute approximate equality:
/// true when `|a-b| <= tol * max(1, |a|, |b|)`.
#[inline]
pub fn rel_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * 1.0_f64.max(a.abs()).max(b.abs())
}
