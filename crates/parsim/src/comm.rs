//! MPI-style sub-communicators for hierarchical parallelism.
//!
//! OMEN's four-level decomposition (bias × momentum × energy × space) maps
//! each level onto a communicator split. A [`Comm`] is a view over a subset
//! of world ranks; collectives inside it are built from world point-to-point
//! messages with tags namespaced by a communicator id, so concurrent
//! collectives on disjoint communicators cannot cross-talk.
//!
//! SPMD contract (same as MPI): every member of a communicator calls its
//! collectives in the same order. The contract is *verified*, not assumed:
//! every collective runs the fingerprint round of
//! [`crate::runtime`] — op kind, communicator id, op counter and payload
//! length travel with the first message, and a divergent member turns the
//! whole round into a typed [`omen_num::OmenError::ScheduleDivergence`] on
//! every rank instead of a hang.

use crate::runtime::{
    decode_f64s, encode_f64s, sum_contributions, CollectiveKind, RankCtx, LEN_UNCHECKED,
};
use omen_num::{OmenError, OmenResult};
use std::cell::RefCell;

/// A sub-communicator: an ordered subset of world ranks.
pub struct Comm<'a> {
    ctx: &'a RankCtx,
    /// Global rank of each member, ordered; `members[local_rank]` is me.
    members: Vec<usize>,
    my_index: usize,
    comm_id: u64,
    op_counter: RefCell<u64>,
    epoch_counter: RefCell<u64>,
}

impl<'a> Comm<'a> {
    /// The world communicator containing every rank.
    pub fn world(ctx: &'a RankCtx) -> Comm<'a> {
        let members: Vec<usize> = (0..ctx.size()).collect();
        let my_index = ctx.rank();
        Comm {
            ctx,
            members,
            my_index,
            comm_id: 1,
            op_counter: RefCell::new(0),
            epoch_counter: RefCell::new(0),
        }
    }

    /// Local rank within this communicator.
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Global rank of local member `i`.
    pub fn global_rank(&self, i: usize) -> usize {
        self.members[i]
    }

    /// Advances and returns this communicator's *epoch* counter — a
    /// lockstep sequence number for sweep-scoped point-to-point protocols
    /// (e.g. the `omen-sched` coordinator/worker rounds). Like the
    /// collective op counter, it never travels on the wire by itself:
    /// every member advancing it in the same SPMD order yields the same
    /// value on every rank without communication, and protocols stamp
    /// their messages with it so traffic from a superseded round is
    /// recognized instead of corrupting the current one.
    pub fn next_epoch(&self) -> u64 {
        let mut c = self.epoch_counter.borrow_mut();
        *c += 1;
        *c
    }

    /// Folds dynamic-scheduler accounting into this rank's
    /// [`crate::CommStats`]. Called once per sweep by the `omen-sched`
    /// coordinator, so fleet-wide totals (`RunOutput::total_stats`) count
    /// each re-issue exactly once.
    pub fn record_sched(&self, reissues: u64, stale: u64) {
        self.ctx.record_sched(reissues, stale);
    }

    fn next_op(&self) -> u64 {
        let mut c = self.op_counter.borrow_mut();
        *c += 1;
        *c
    }

    /// Point-to-point send to a *local* rank with a user tag.
    pub fn send(&self, to_local: usize, tag: u64, data: Vec<u8>) {
        // Namespace user p2p under the comm id as well (bit 62 marks p2p).
        let t = (1 << 62) | ((self.comm_id & 0x3FFF_FFFF) << 24) | (tag & 0xFF_FFFF);
        self.ctx.send_internal(self.members[to_local], t, data);
    }

    /// Point-to-point receive from a *local* rank.
    ///
    /// # Errors
    ///
    /// [`OmenError::RecvTimeout`] when no matching message arrives within
    /// the runtime's receive bound, [`OmenError::ChannelClosed`] when the
    /// runtime is tearing down; both report the out-of-order buffer state.
    pub fn recv(&self, from_local: usize, tag: u64) -> OmenResult<Vec<u8>> {
        let t = (1 << 62) | ((self.comm_id & 0x3FFF_FFFF) << 24) | (tag & 0xFF_FFFF);
        self.ctx.recv_internal(self.members[from_local], t)
    }

    /// Any-source receive on this communicator: the next message carrying
    /// `tag` from *any* member, waiting at most `timeout`. Returns the
    /// sender's *local* rank with the payload, or `None` when the poll
    /// window elapsed. Buffered matches drain lowest-sender-first (see
    /// [`RankCtx::try_recv_any`]).
    ///
    /// # Errors
    ///
    /// [`OmenError::ChannelClosed`] when the runtime is tearing down;
    /// [`OmenError::Deserialize`] when a matching message arrived from a
    /// rank outside this communicator (a tag-namespace violation).
    pub fn try_recv_any(
        &self,
        tag: u64,
        timeout: std::time::Duration,
    ) -> OmenResult<Option<(usize, Vec<u8>)>> {
        let t = (1 << 62) | ((self.comm_id & 0x3FFF_FFFF) << 24) | (tag & 0xFF_FFFF);
        match self.ctx.try_recv_any_internal(t, timeout)? {
            None => Ok(None),
            Some((global, data)) => {
                let local = self.members.iter().position(|&g| g == global).ok_or(
                    OmenError::Deserialize {
                        context: "any-source sender not a member of this communicator",
                    },
                )?;
                Ok(Some((local, data)))
            }
        }
    }

    /// Received-but-unconsumed messages in this rank's out-of-order buffer
    /// (world-wide, not per-communicator). See [`RankCtx::pending_messages`].
    pub fn pending_messages(&self) -> usize {
        self.ctx.pending_messages()
    }

    /// Point-to-point subset of [`Self::pending_messages`] (messages from
    /// in-flight collectives of faster ranks excluded).
    pub fn pending_p2p_messages(&self) -> usize {
        self.ctx.pending_p2p_messages()
    }

    /// Allreduce (sum) over this communicator.
    ///
    /// # Errors
    ///
    /// [`OmenError::ScheduleDivergence`] when a member entered a different
    /// collective (or a different vector length) this round; receive
    /// failures propagate as [`OmenError::RecvTimeout`] /
    /// [`OmenError::ChannelClosed`].
    pub fn allreduce_sum(&self, x: &[f64]) -> OmenResult<Vec<f64>> {
        let op = self.next_op();
        let up = encode_f64s(x);
        let len = up.len() as u64;
        let (_, down) = self.ctx.collective_round(
            &self.members,
            self.my_index,
            0,
            self.comm_id,
            op,
            CollectiveKind::AllreduceSum,
            len,
            up,
            sum_contributions,
        )?;
        Ok(decode_f64s(&down))
    }

    /// Broadcast from local `root`.
    ///
    /// # Errors
    ///
    /// [`OmenError::ScheduleDivergence`] when a member entered a different
    /// collective this round; receive failures propagate as
    /// [`OmenError::RecvTimeout`] / [`OmenError::ChannelClosed`].
    pub fn bcast(&self, root: usize, data: Vec<u8>) -> OmenResult<Vec<u8>> {
        let op = self.next_op();
        let (_, down) = self.ctx.collective_round(
            &self.members,
            self.my_index,
            root,
            self.comm_id,
            op,
            CollectiveKind::Bcast,
            0,
            Vec::new(),
            move |_| data,
        )?;
        Ok(down)
    }

    /// Gathers payloads to local `root` (ordered by local rank); returns
    /// `Some(per-rank payloads)` on the root and `None` elsewhere.
    ///
    /// # Errors
    ///
    /// [`OmenError::ScheduleDivergence`] when a member entered a different
    /// collective this round; receive failures propagate as
    /// [`OmenError::RecvTimeout`] / [`OmenError::ChannelClosed`].
    pub fn gather(&self, root: usize, data: Vec<u8>) -> OmenResult<Option<Vec<Vec<u8>>>> {
        let op = self.next_op();
        let (parts, _) = self.ctx.collective_round(
            &self.members,
            self.my_index,
            root,
            self.comm_id,
            op,
            CollectiveKind::Gather,
            LEN_UNCHECKED,
            data,
            |_| Vec::new(),
        )?;
        Ok(parts)
    }

    /// Splits this communicator by `color`; members with the same color end
    /// up in the same sub-communicator, ordered by `key` (ties by current
    /// local rank).
    ///
    /// # Errors
    ///
    /// Propagates the underlying gather/bcast failures
    /// ([`OmenError::ScheduleDivergence`], [`OmenError::RecvTimeout`],
    /// [`OmenError::ChannelClosed`]); [`OmenError::Deserialize`] when the
    /// exchanged membership table does not contain this rank.
    pub fn split(&self, color: u64, key: u64) -> OmenResult<Comm<'a>> {
        // Allgather (color, key, global_rank) over this comm.
        let mine = encode_f64s(&[color as f64, key as f64, self.ctx.rank() as f64]);
        let gathered = match self.gather(0, mine)? {
            Some(g) => {
                let flat: Vec<u8> = g.into_iter().flatten().collect();
                // analyze: allow(spmd-divergence, two-phase allgather: the arms split on the gather root verdict but BOTH issue this bcast, so the schedule stays rank-uniform)
                self.bcast(0, flat)?
            }
            // analyze: allow(spmd-divergence, non-root arm of the same two-phase allgather; every rank issues exactly one bcast)
            None => self.bcast(0, Vec::new())?,
        };
        let vals = decode_f64s(&gathered);
        let mut triples: Vec<(u64, u64, usize)> = vals
            .chunks_exact(3)
            .map(|c| (c[0] as u64, c[1] as u64, c[2] as usize))
            .collect();
        triples.sort_by_key(|&(c, k, g)| (c, k, g));

        let members: Vec<usize> = triples
            .iter()
            .filter(|&&(c, _, _)| c == color)
            .map(|&(_, _, g)| g)
            .collect();
        let my_index =
            members
                .iter()
                .position(|&g| g == self.ctx.rank())
                .ok_or(OmenError::Deserialize {
                    context: "comm split membership (splitting rank missing from its color group)",
                })?;
        // Deterministic child id derived from parent id and color.
        let comm_id = (self
            .comm_id
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(color.wrapping_add(1) * 0x85EB_CA6B))
            & 0x7FFF_FFFF;
        Ok(Comm {
            ctx: self.ctx,
            members,
            my_index,
            comm_id,
            op_counter: RefCell::new(0),
            epoch_counter: RefCell::new(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_ranks;

    #[test]
    fn world_matches_ctx() {
        let out = run_ranks(4, |ctx| {
            let w = Comm::world(ctx);
            (w.rank(), w.size())
        });
        for (r, (wr, ws)) in out.unwrap_all().into_iter().enumerate() {
            assert_eq!((wr, ws), (r, 4));
        }
    }

    #[test]
    fn split_groups_and_reduces_independently() {
        // 6 ranks in 2 colors: evens and odds. Each group sums its ranks.
        let out = run_ranks(6, |ctx| {
            let w = Comm::world(ctx);
            let color = (ctx.rank() % 2) as u64;
            let sub = w.split(color, ctx.rank() as u64).unwrap();
            assert_eq!(sub.size(), 3);
            let s = sub.allreduce_sum(&[ctx.rank() as f64]).unwrap();
            s[0]
        });
        for (r, v) in out.unwrap_all().into_iter().enumerate() {
            let expect = if r % 2 == 0 {
                0.0 + 2.0 + 4.0
            } else {
                1.0 + 3.0 + 5.0
            };
            assert_eq!(v, expect, "rank {r}");
        }
    }

    #[test]
    fn nested_splits_form_grid() {
        // 8 ranks → 2×2×2 grid via two successive splits.
        let out = run_ranks(8, |ctx| {
            let w = Comm::world(ctx);
            let level1 = w.split((ctx.rank() / 4) as u64, ctx.rank() as u64).unwrap();
            assert_eq!(level1.size(), 4);
            let level2 = level1
                .split((level1.rank() / 2) as u64, level1.rank() as u64)
                .unwrap();
            assert_eq!(level2.size(), 2);
            // Reduce within the innermost pair.
            let s = level2.allreduce_sum(&[1.0]).unwrap();
            s[0]
        });
        assert!(out.unwrap_all().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn sub_comm_bcast_and_gather() {
        let out = run_ranks(4, |ctx| {
            let w = Comm::world(ctx);
            let sub = w.split((ctx.rank() / 2) as u64, 0).unwrap();
            let data = sub.bcast(0, vec![sub.global_rank(0) as u8]).unwrap();
            let g = sub.gather(1, data.clone()).unwrap();
            if sub.rank() == 1 {
                let g = g.unwrap();
                assert_eq!(g.len(), 2);
                assert_eq!(g[0], g[1]);
            }
            data[0] as usize
        });
        assert_eq!(out.unwrap_all(), vec![0, 0, 2, 2]);
    }

    #[test]
    fn comm_try_recv_any_reports_local_ranks() {
        use std::time::Duration;
        // 4 ranks split into pairs; the pair leader collects one any-source
        // message and must see the sender's *local* rank (1), not global.
        let out = run_ranks(4, |ctx| {
            let w = Comm::world(ctx);
            let sub = w.split((ctx.rank() / 2) as u64, 0).unwrap();
            if sub.rank() == 0 {
                let (from, data) = sub
                    .try_recv_any(3, Duration::from_secs(5))
                    .unwrap()
                    .expect("partner sends promptly");
                assert_eq!(from, 1);
                assert_eq!(data, vec![ctx.rank() as u8 + 1]);
                assert!(sub
                    .try_recv_any(3, Duration::from_millis(5))
                    .unwrap()
                    .is_none());
                1
            } else {
                sub.send(0, 3, vec![ctx.rank() as u8]);
                0
            }
        });
        assert_eq!(out.unwrap_all().iter().sum::<i32>(), 2);
    }

    #[test]
    fn concurrent_group_collectives_do_not_crosstalk() {
        // Both groups run many interleaved allreduces; sums must stay exact.
        let out = run_ranks(4, |ctx| {
            let w = Comm::world(ctx);
            let sub = w.split((ctx.rank() % 2) as u64, 0).unwrap();
            let mut acc = 0.0;
            for i in 0..50 {
                let v = sub.allreduce_sum(&[(ctx.rank() + i) as f64]).unwrap();
                acc += v[0];
            }
            acc
        });
        // Group evens: ranks 0,2 → sum per step = (0+i)+(2+i) = 2+2i.
        let even: f64 = (0..50).map(|i| 2.0 + 2.0 * i as f64).sum();
        let odd: f64 = (0..50).map(|i| 4.0 + 2.0 * i as f64).sum();
        let results = out.unwrap_all();
        assert_eq!(results[0], even);
        assert_eq!(results[2], even);
        assert_eq!(results[1], odd);
        assert_eq!(results[3], odd);
    }

    #[test]
    fn sub_comm_skipped_bcast_is_schedule_divergence() {
        use omen_num::{OmenError, OmenResult};
        // Four ranks split into two pairs; local rank 1 of the second pair
        // skips a bcast on its sub-communicator and goes straight to the
        // pair's allreduce. Both members of that pair must fail with the
        // same typed ScheduleDivergence; the healthy pair must be
        // untouched and reduce correctly.
        let out = run_ranks(4, |ctx| -> OmenResult<f64> {
            let w = Comm::world(ctx);
            let sub = w.split((ctx.rank() / 2) as u64, 0)?;
            if ctx.rank() != 3 {
                // analyze: allow(spmd-divergence, deliberately divergent schedule under test)
                sub.bcast(0, vec![1])?;
            }
            let s = sub.allreduce_sum(&[1.0])?;
            Ok(s[0])
        })
        .flattened();
        assert_eq!(out.results[0], Ok(2.0));
        assert_eq!(out.results[1], Ok(2.0));
        for rank in [2, 3] {
            match &out.results[rank] {
                Err(OmenError::ScheduleDivergence {
                    rank: divergent,
                    expected,
                    got,
                }) => {
                    assert_eq!(*divergent, 3);
                    assert!(expected.contains("bcast#1"), "expected fp: {expected}");
                    assert!(got.contains("allreduce_sum#1"), "got fp: {got}");
                }
                other => panic!("rank {rank}: expected ScheduleDivergence, got {other:?}"),
            }
        }
    }
}
