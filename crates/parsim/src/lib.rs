//! # omen-parsim — rank-parallel runtime and petascale machine model
//!
//! The original system ran on the Cray XT5 "Jaguar" through MPI with a
//! four-level hierarchical communicator layout (bias × momentum × energy ×
//! spatial domains). This crate substitutes both pieces:
//!
//! * [`runtime`] — OS threads act as MPI ranks. Tagged point-to-point
//!   `send`/`recv`, barriers and collectives run over lock-free channels,
//!   executing the *same communication pattern* (who talks to whom, message
//!   sizes, reduction trees) the MPI code would. All traffic is counted per
//!   rank ([`CommStats`]).
//! * [`comm`] — MPI-style communicator splitting for the hierarchical
//!   parallel levels, with collectives scoped to sub-communicators.
//! * [`machine`] — an analytic model of Jaguar (per-core peak, GEMM
//!   efficiency, LogGP-style link parameters) that converts *measured* flop
//!   counts and communication volumes into projected wall-clock time and
//!   sustained performance at arbitrary core counts — this is how the
//!   1.44 PFlop/s scaling figures are regenerated without the hardware.

pub mod comm;
pub mod machine;
pub mod runtime;

pub use comm::Comm;
pub use machine::MachineModel;
pub use runtime::{run_ranks, run_ranks_with_timeout, CommStats, RankCtx, RunOutput};
