//! Analytic machine model calibrated to the Cray XT5 "Jaguar".
//!
//! The reproduction cannot run on 224k Opteron cores, so the evaluation
//! harness separates *what is measured* from *what is modeled*:
//!
//! * measured — double-precision flop counts from the instrumented kernels
//!   (`omen_linalg::flops`) and communication volumes from [`crate::runtime`];
//! * modeled — the conversion of those counts into wall-clock seconds on a
//!   Jaguar-class machine, using per-core sustained GEMM throughput and a
//!   latency/bandwidth (LogGP-style) link model with log₂(p) reduction trees.
//!
//! Machine constants follow the published Jaguar XT5 configuration: 2.6 GHz
//! six-core Istanbul Opterons (4 flops/cycle/core ⇒ 10.4 GFlop/s peak per
//! core), 224 256 cores ⇒ 2.33 PFlop/s peak, SeaStar2+ interconnect with
//! ~6 µs latency and ~2 GB/s per-direction link bandwidth.

/// Communication totals for one projected execution phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommVolume {
    /// Point-to-point messages per rank (average).
    pub p2p_messages: f64,
    /// Point-to-point bytes per rank (average).
    pub p2p_bytes: f64,
    /// Collective operations per rank.
    pub collectives: f64,
    /// Bytes per collective.
    pub collective_bytes: f64,
}

/// An analytic machine description.
#[derive(Debug, Clone, Copy)]
pub struct MachineModel {
    /// Human-readable name.
    pub name: &'static str,
    /// Peak double-precision flops per core (flop/s).
    pub peak_flops_per_core: f64,
    /// Fraction of peak sustained by the dense kernels dominating the
    /// workload (ZGEMM-rich RGF/WF solves sustain 70–85% on Opterons).
    pub gemm_efficiency: f64,
    /// Point-to-point latency (s).
    pub latency: f64,
    /// Point-to-point bandwidth (bytes/s).
    pub bandwidth: f64,
    /// Total cores of the full machine.
    pub total_cores: usize,
}

impl MachineModel {
    /// The Cray XT5 "Jaguar" as of the SC11 submission window.
    pub fn jaguar_xt5() -> MachineModel {
        MachineModel {
            name: "Cray XT5 Jaguar",
            peak_flops_per_core: 10.4e9,
            gemm_efficiency: 0.72,
            latency: 6e-6,
            bandwidth: 2.0e9,
            total_cores: 224_256,
        }
    }

    /// A single modern workstation core (for local sanity comparisons).
    pub fn workstation() -> MachineModel {
        MachineModel {
            name: "workstation core",
            peak_flops_per_core: 3.0e9 * 16.0,
            gemm_efficiency: 0.8,
            latency: 1e-7,
            bandwidth: 2.0e10,
            total_cores: 16,
        }
    }

    /// Machine peak in flop/s.
    pub fn peak_flops(&self) -> f64 {
        self.peak_flops_per_core * self.total_cores as f64
    }

    /// Time for one core to execute `flops` double-precision operations in
    /// dense kernels.
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops / (self.peak_flops_per_core * self.gemm_efficiency)
    }

    /// Time for one point-to-point message of `bytes`.
    pub fn p2p_time(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }

    /// Time for one allreduce of `bytes` over `p` ranks (binary tree up and
    /// down: `2·log₂(p)` message steps).
    pub fn allreduce_time(&self, bytes: f64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        2.0 * (p as f64).log2().ceil() * self.p2p_time(bytes)
    }

    /// Projects one execution phase: the critical-path rank executes
    /// `flops_per_rank` of dense work plus the given communication volume,
    /// with collectives spanning `ranks`.
    pub fn project_phase(&self, flops_per_rank: f64, comm: CommVolume, ranks: usize) -> f64 {
        let t_comp = self.compute_time(flops_per_rank);
        let t_p2p = comm.p2p_messages * self.latency + comm.p2p_bytes / self.bandwidth;
        let t_coll = comm.collectives * self.allreduce_time(comm.collective_bytes, ranks);
        t_comp + t_p2p + t_coll
    }

    /// Sustained performance of a run: total flops over projected time.
    pub fn sustained(&self, total_flops: f64, wall_time: f64) -> f64 {
        total_flops / wall_time
    }

    /// Parallel efficiency of `p` ranks against the 1-rank projection.
    pub fn efficiency(&self, t1: f64, tp: f64, p: usize) -> f64 {
        t1 / (tp * p as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaguar_peak_is_2_33_pflops() {
        let m = MachineModel::jaguar_xt5();
        let peak = m.peak_flops();
        assert!((peak / 1e15 - 2.33).abs() < 0.02, "peak {peak:e}");
    }

    #[test]
    fn compute_time_scales_linearly() {
        let m = MachineModel::jaguar_xt5();
        let t1 = m.compute_time(1e12);
        let t2 = m.compute_time(2e12);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        // 1 Tflop at ~7.5 Gflop/s sustained ⇒ ~133 s.
        assert!((t1 - 1e12 / (10.4e9 * 0.72)).abs() < 1e-9);
    }

    #[test]
    fn allreduce_grows_logarithmically() {
        let m = MachineModel::jaguar_xt5();
        let t1k = m.allreduce_time(8.0, 1024);
        let t2k = m.allreduce_time(8.0, 2048);
        assert!(t2k > t1k);
        assert!((t2k / t1k - 11.0 / 10.0).abs() < 1e-9, "log2 steps 10 → 11");
        assert_eq!(m.allreduce_time(8.0, 1), 0.0);
    }

    #[test]
    fn phase_projection_combines_terms() {
        let m = MachineModel::jaguar_xt5();
        let comm = CommVolume {
            p2p_messages: 10.0,
            p2p_bytes: 1e6,
            collectives: 2.0,
            collective_bytes: 64.0,
        };
        let t = m.project_phase(1e9, comm, 64);
        let expect = m.compute_time(1e9)
            + 10.0 * m.latency
            + 1e6 / m.bandwidth
            + 2.0 * m.allreduce_time(64.0, 64);
        assert!((t - expect).abs() < 1e-12);
    }

    #[test]
    fn sustained_at_sixty_percent_reaches_1_4_pflops() {
        // Sanity: the headline number is reachable within the model —
        // 224k cores at 72% GEMM efficiency and ~86% parallel efficiency
        // lands at ≈1.44 PFlop/s.
        let m = MachineModel::jaguar_xt5();
        let sustained = m.peak_flops() * m.gemm_efficiency * 0.86;
        assert!(
            (sustained / 1e15 - 1.44).abs() < 0.05,
            "sustained {sustained:e}"
        );
    }
}
