//! Threads-as-ranks message-passing runtime.
//!
//! [`run_ranks`] spawns `n` scoped threads, each holding a [`RankCtx`] with
//! a channel receiver and clones of every other rank's sender. Messages are
//! `(from, tag, payload)` triplets; `recv` delivers in match order with an
//! out-of-order buffer, so the semantics match `MPI_Recv` with explicit
//! source and tag. Collectives are built from point-to-point operations so
//! their traffic is *executed*, not modeled.
//!
//! Fault containment: a panic inside one rank's closure is caught on that
//! rank's thread and surfaced as `Err(OmenError::RankFailed)` in
//! [`RunOutput::results`] — the other ranks and the calling process keep
//! running. Receives carry a generous timeout so a peer's death converts a
//! would-be deadlock into a bounded, attributable failure.

use omen_num::{OmenError, OmenResult};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Barrier;
use std::time::Duration;

/// One message between ranks.
struct Msg {
    from: usize,
    tag: u64,
    data: Vec<u8>,
}

/// Upper bound on how long a blocking receive waits for a matching message.
/// Ranks share one process, so any legitimate message arrives in micro- to
/// milliseconds; hitting this bound means the sending rank died or the
/// communication schedule diverged, and the receive fails loudly (captured
/// per-rank by [`run_ranks`]) instead of deadlocking the job.
const RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// Per-rank communication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub messages_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Barriers participated in.
    pub barriers: u64,
    /// Collective operations (allreduce/bcast/gather) participated in.
    pub collectives: u64,
}

impl CommStats {
    /// Element-wise sum.
    pub fn merged(&self, o: &CommStats) -> CommStats {
        CommStats {
            messages_sent: self.messages_sent + o.messages_sent,
            bytes_sent: self.bytes_sent + o.bytes_sent,
            barriers: self.barriers + o.barriers,
            collectives: self.collectives + o.collectives,
        }
    }
}

/// Out-of-order receive buffer keyed by `(source rank, tag)`.
type PendingMsgs = HashMap<(usize, u64), VecDeque<Vec<u8>>>;

/// The execution context handed to each rank's closure.
pub struct RankCtx {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    barrier: std::sync::Arc<Barrier>,
    // Out-of-order buffer: messages that arrived before being asked for.
    pending: RefCell<PendingMsgs>,
    stats: RefCell<CommStats>,
    // Monotone counter namespacing world-collective tags.
    op_counter: RefCell<u64>,
}

/// Tag namespace split: user tags occupy the low half, internal collective
/// tags the high half.
pub(crate) const COLLECTIVE_TAG_BASE: u64 = 1 << 63;

impl RankCtx {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Snapshot of this rank's communication counters.
    pub fn stats(&self) -> CommStats {
        *self.stats.borrow()
    }

    /// Number of received-but-unconsumed messages sitting in the
    /// out-of-order buffer. A correct SPMD protocol drains to zero at its
    /// synchronization points; a nonzero value after a solve indicates a
    /// leaked (e.g. duplicated) send.
    pub fn pending_messages(&self) -> usize {
        self.pending.borrow().values().map(|q| q.len()).sum()
    }

    /// Like [`Self::pending_messages`], restricted to point-to-point
    /// traffic (collective-internal messages excluded). Collective
    /// payloads from ranks running ahead of this one may legitimately sit
    /// in the buffer at a solver's drain point; leaked point-to-point
    /// sends may not.
    pub fn pending_p2p_messages(&self) -> usize {
        self.pending
            .borrow()
            .iter()
            .filter(|((_, tag), _)| tag & COLLECTIVE_TAG_BASE == 0)
            .map(|(_, q)| q.len())
            .sum()
    }

    /// Sends `data` to rank `to` with a user `tag` (must be < 2⁶³).
    pub fn send(&self, to: usize, tag: u64, data: Vec<u8>) {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must stay below 2^63");
        self.send_internal(to, tag, data);
    }

    pub(crate) fn send_internal(&self, to: usize, tag: u64, data: Vec<u8>) {
        assert!(to < self.size, "send to out-of-range rank {to}");
        {
            let mut s = self.stats.borrow_mut();
            s.messages_sent += 1;
            s.bytes_sent += data.len() as u64;
        }
        // A send can only fail when the destination rank already died (its
        // receiver dropped). The peer's failure is reported by run_ranks;
        // aborting this rank too would just obscure the root cause.
        let _ = self.senders[to].send(Msg {
            from: self.rank,
            tag,
            data,
        });
    }

    /// Blocking receive of the next message from `from` with `tag`.
    pub fn recv(&self, from: usize, tag: u64) -> Vec<u8> {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must stay below 2^63");
        self.recv_internal(from, tag)
    }

    pub(crate) fn recv_internal(&self, from: usize, tag: u64) -> Vec<u8> {
        if let Some(q) = self.pending.borrow_mut().get_mut(&(from, tag)) {
            if let Some(d) = q.pop_front() {
                return d;
            }
        }
        loop {
            let msg = match self.receiver.recv_timeout(RECV_TIMEOUT) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => panic!(
                    "rank {} recv(from = {from}, tag = {tag:#x}) timed out after {}s \
                     (peer dead or schedule divergence)",
                    self.rank,
                    RECV_TIMEOUT.as_secs()
                ),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("rank {} channel closed while receiving", self.rank)
                }
            };
            if msg.from == from && msg.tag == tag {
                return msg.data;
            }
            self.pending
                .borrow_mut()
                .entry((msg.from, msg.tag))
                .or_default()
                .push_back(msg.data);
        }
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.stats.borrow_mut().barriers += 1;
        self.barrier.wait();
    }

    /// World-scope allreduce (sum) of an `f64` vector. All ranks must call
    /// in the same order (MPI semantics). Linear gather to rank 0 + bcast;
    /// the traffic is really executed and counted.
    pub fn allreduce_sum(&self, x: &[f64]) -> Vec<f64> {
        let op = self.next_op();
        self.stats.borrow_mut().collectives += 1;
        let tag = COLLECTIVE_TAG_BASE | op;
        if self.rank == 0 {
            let mut acc = x.to_vec();
            for r in 1..self.size {
                let data = self.recv_internal(r, tag);
                for (a, b) in acc.iter_mut().zip(decode_f64s(&data)) {
                    *a += b;
                }
            }
            for r in 1..self.size {
                self.send_internal(r, tag, encode_f64s(&acc));
            }
            acc
        } else {
            self.send_internal(0, tag, encode_f64s(x));
            decode_f64s(&self.recv_internal(0, tag))
        }
    }

    /// World-scope broadcast from `root`.
    pub fn bcast(&self, root: usize, data: Vec<u8>) -> Vec<u8> {
        let op = self.next_op();
        self.stats.borrow_mut().collectives += 1;
        let tag = COLLECTIVE_TAG_BASE | op;
        if self.rank == root {
            for r in 0..self.size {
                if r != root {
                    self.send_internal(r, tag, data.clone());
                }
            }
            data
        } else {
            self.recv_internal(root, tag)
        }
    }

    /// World-scope gather to `root`; returns `Some(per-rank payloads)` on
    /// the root and `None` elsewhere.
    pub fn gather(&self, root: usize, data: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        let op = self.next_op();
        self.stats.borrow_mut().collectives += 1;
        let tag = COLLECTIVE_TAG_BASE | op;
        if self.rank == root {
            let mut out = vec![Vec::new(); self.size];
            out[root] = data;
            for (r, slot) in out.iter_mut().enumerate() {
                if r != root {
                    *slot = self.recv_internal(r, tag);
                }
            }
            Some(out)
        } else {
            self.send_internal(root, tag, data);
            None
        }
    }

    fn next_op(&self) -> u64 {
        let mut c = self.op_counter.borrow_mut();
        *c += 1;
        assert!(*c < 1 << 31, "collective counter overflow");
        *c
    }
}

/// Result of a rank-parallel run.
pub struct RunOutput<R> {
    /// Per-rank closure results, indexed by rank. A rank that panicked or
    /// whose receive timed out yields `Err(OmenError::RankFailed)` here;
    /// the other ranks' results are still delivered.
    pub results: Vec<OmenResult<R>>,
    /// Per-rank communication counters (zeroed for failed ranks).
    pub stats: Vec<CommStats>,
}

impl<R> RunOutput<R> {
    /// Aggregate communication counters over all ranks.
    pub fn total_stats(&self) -> CommStats {
        self.stats
            .iter()
            .fold(CommStats::default(), |a, b| a.merged(b))
    }

    /// The first failed rank, if any.
    pub fn first_error(&self) -> Option<&OmenError> {
        self.results.iter().find_map(|r| r.as_ref().err())
    }

    /// Unwraps every rank's result, panicking with the first failure's
    /// message. Convenience for callers (tests, benches) where any rank
    /// failure is a bug in the calling protocol.
    pub fn unwrap_all(self) -> Vec<R> {
        self.results
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(e) => panic!("{e}"),
            })
            .collect()
    }
}

impl<R> RunOutput<OmenResult<R>> {
    /// Collapses `Ok(Err(e))` (the closure itself returned an error) into
    /// `Err(e)`, merging closure-level and runtime-level failures into one
    /// per-rank `OmenResult`.
    pub fn flattened(self) -> RunOutput<R> {
        RunOutput {
            results: self
                .results
                .into_iter()
                .map(|r| r.and_then(|inner| inner))
                .collect(),
            stats: self.stats,
        }
    }
}

fn panic_detail(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs `f` on `n` ranks (threads) and collects per-rank results and comm
/// counters.
///
/// The closure receives this rank's [`RankCtx`]; it must follow SPMD
/// collective ordering (all ranks call collectives in the same sequence).
/// A panic inside one rank is caught on that rank's thread and reported as
/// `Err(OmenError::RankFailed { rank, .. })` in the output — it does not
/// tear down the process or the surviving ranks. Note that a rank waiting
/// on a dead peer fails via the receive timeout, while one blocked in
/// [`RankCtx::barrier`] cannot be released early; barrier-free protocols
/// (all solver traffic here) degrade gracefully.
pub fn run_ranks<R, F>(n: usize, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&RankCtx) -> R + Sync,
{
    assert!(n > 0);
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = channel::<Msg>();
        senders.push(s);
        receivers.push(r);
    }
    let barrier = std::sync::Arc::new(Barrier::new(n));

    let mut out: Vec<Option<(OmenResult<R>, CommStats)>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (rank, receiver) in receivers.into_iter().enumerate() {
            let senders = senders.clone();
            let barrier = barrier.clone();
            let f = &f;
            handles.push(scope.spawn(move || {
                let ctx = RankCtx {
                    rank,
                    size: n,
                    senders,
                    receiver,
                    barrier,
                    pending: RefCell::new(HashMap::new()),
                    stats: RefCell::new(CommStats::default()),
                    op_counter: RefCell::new(0),
                };
                match catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
                    Ok(r) => (Ok(r), ctx.stats()),
                    Err(p) => (
                        Err(OmenError::RankFailed {
                            rank,
                            detail: panic_detail(p),
                        }),
                        CommStats::default(),
                    ),
                }
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            // The closure result is pre-caught above; join itself can only
            // fail on runtime-internal corruption.
            out[rank] = Some(match h.join() {
                Ok(pair) => pair,
                Err(p) => (
                    Err(OmenError::RankFailed {
                        rank,
                        detail: panic_detail(p),
                    }),
                    CommStats::default(),
                ),
            });
        }
    });

    let mut results = Vec::with_capacity(n);
    let mut stats = Vec::with_capacity(n);
    for (rank, slot) in out.into_iter().enumerate() {
        let (r, s) = slot.unwrap_or_else(|| {
            (
                Err(OmenError::RankFailed {
                    rank,
                    detail: "rank produced no result".into(),
                }),
                CommStats::default(),
            )
        });
        results.push(r);
        stats.push(s);
    }
    RunOutput { results, stats }
}

/// Encodes an `f64` slice as little-endian bytes.
pub fn encode_f64s(x: &[f64]) -> Vec<u8> {
    let mut v = Vec::with_capacity(x.len() * 8);
    for &f in x {
        v.extend_from_slice(&f.to_le_bytes());
    }
    v
}

/// Decodes little-endian bytes into `f64`s.
pub fn decode_f64s(b: &[u8]) -> Vec<f64> {
    assert_eq!(b.len() % 8, 0, "payload not a multiple of 8 bytes");
    b.chunks_exact(8)
        .map(|c| {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(c);
            f64::from_le_bytes(bytes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let n = 6;
        let out = run_ranks(n, |ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            ctx.send(next, 7, encode_f64s(&[ctx.rank() as f64]));
            let got = decode_f64s(&ctx.recv(prev, 7));
            got[0]
        });
        let total = out.total_stats();
        for (rank, v) in out.unwrap_all().into_iter().enumerate() {
            let prev = (rank + n - 1) % n;
            assert_eq!(v, prev as f64);
        }
        assert_eq!(total.messages_sent, n as u64);
        assert_eq!(total.bytes_sent, 8 * n as u64);
    }

    #[test]
    fn allreduce_matches_serial_sum() {
        let n = 5;
        let out = run_ranks(n, |ctx| {
            let mine = vec![ctx.rank() as f64, 1.0, -(ctx.rank() as f64) * 0.5];
            ctx.allreduce_sum(&mine)
        });
        let expect = [10.0, 5.0, -5.0];
        for r in out.unwrap_all() {
            for (a, b) in r.iter().zip(expect) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bcast_and_gather() {
        let out = run_ranks(4, |ctx| {
            let data = ctx.bcast(
                2,
                if ctx.rank() == 2 {
                    vec![42, 43]
                } else {
                    vec![]
                },
            );
            assert_eq!(data, vec![42, 43]);
            let g = ctx.gather(0, vec![ctx.rank() as u8]);
            if ctx.rank() == 0 {
                let g = g.unwrap();
                assert_eq!(g, vec![vec![0], vec![1], vec![2], vec![3]]);
                1
            } else {
                assert!(g.is_none());
                0
            }
        });
        assert_eq!(out.unwrap_all().iter().sum::<i32>(), 1);
    }

    #[test]
    fn out_of_order_tags_buffered() {
        let out = run_ranks(2, |ctx| {
            if ctx.rank() == 0 {
                // Send tag 2 first, then tag 1.
                ctx.send(1, 2, vec![2]);
                ctx.send(1, 1, vec![1]);
                0
            } else {
                // Receive in the opposite order.
                let a = ctx.recv(0, 1);
                let b = ctx.recv(0, 2);
                assert_eq!((a, b), (vec![1], vec![2]));
                assert_eq!(ctx.pending_messages(), 0, "buffer drained after both recvs");
                1
            }
        });
        assert_eq!(out.unwrap_all(), vec![0, 1]);
    }

    #[test]
    fn barrier_counts() {
        let out = run_ranks(3, |ctx| {
            ctx.barrier();
            ctx.barrier();
            ctx.rank()
        });
        for s in &out.stats {
            assert_eq!(s.barriers, 2);
        }
    }

    #[test]
    fn single_rank_degenerate() {
        let out = run_ranks(1, |ctx| {
            assert_eq!(ctx.size(), 1);
            let r = ctx.allreduce_sum(&[3.0]);
            assert_eq!(r, vec![3.0]);
            let b = ctx.bcast(0, vec![9]);
            assert_eq!(b, vec![9]);
            7u8
        });
        assert_eq!(out.unwrap_all(), vec![7]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let x = vec![1.5, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(decode_f64s(&encode_f64s(&x)), x);
    }

    #[test]
    fn rank_panic_is_captured_not_fatal() {
        let out = run_ranks(3, |ctx| {
            if ctx.rank() == 1 {
                panic!("deliberate failure on rank 1");
            }
            ctx.rank() * 10
        });
        assert!(out.results[0].is_ok());
        assert!(out.results[2].is_ok());
        match &out.results[1] {
            Err(OmenError::RankFailed { rank, detail }) => {
                assert_eq!(*rank, 1);
                assert!(detail.contains("deliberate failure"));
            }
            other => panic!("expected RankFailed, got {other:?}"),
        }
        assert!(out.first_error().is_some());
    }

    #[test]
    fn closure_level_errors_flatten() {
        let out = run_ranks(2, |ctx| -> OmenResult<usize> {
            if ctx.rank() == 0 {
                Err(OmenError::LeadNotConverged {
                    energy: 0.25,
                    iters: 200,
                })
            } else {
                Ok(99)
            }
        })
        .flattened();
        assert_eq!(
            out.results[0],
            Err(OmenError::LeadNotConverged {
                energy: 0.25,
                iters: 200
            })
        );
        assert_eq!(out.results[1], Ok(99));
    }
}
