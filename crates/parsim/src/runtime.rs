//! Threads-as-ranks message-passing runtime.
//!
//! [`run_ranks`] spawns `n` scoped threads, each holding a [`RankCtx`] with
//! a channel receiver and clones of every other rank's sender. Messages are
//! `(from, tag, payload)` triplets; `recv` delivers in match order with an
//! out-of-order buffer, so the semantics match `MPI_Recv` with explicit
//! source and tag. Collectives are built from point-to-point operations so
//! their traffic is *executed*, not modeled.
//!
//! ## Collective schedule verification
//!
//! Every rank of a communicator must enter the same collectives in the same
//! order (the SPMD contract). Instead of trusting a doc comment, each
//! collective runs a verified round: every non-root member prepends a
//! [`Fingerprint`] header — op kind, communicator id, op counter, payload
//! length — to its first message, the root compares each header against its
//! own fingerprint, and a mismatch is broadcast back down as a typed
//! [`OmenError::ScheduleDivergence`] on *every* member within that one
//! round. A divergent rank is named at the collective where it diverged,
//! not 30 seconds later as an anonymous timeout.
//!
//! Fault containment: a panic inside one rank's closure is caught on that
//! rank's thread and surfaced as `Err(OmenError::RankFailed)` in
//! [`RunOutput::results`] — the other ranks and the calling process keep
//! running. Receives carry a bounded timeout so a peer's death converts a
//! would-be deadlock into a typed, attributable [`OmenError::RecvTimeout`]
//! that also reports the out-of-order buffer state.

use omen_num::{OmenError, OmenResult};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Barrier;
use std::time::Duration;

/// One message between ranks.
struct Msg {
    from: usize,
    tag: u64,
    data: Vec<u8>,
}

/// Default upper bound on how long a blocking receive waits for a matching
/// message. Ranks share one process, so any legitimate message arrives in
/// micro- to milliseconds; hitting this bound means the sending rank died
/// (schedule divergence inside a collective is caught much earlier by the
/// fingerprint check), and the receive fails with a typed error instead of
/// deadlocking the job. [`run_ranks_with_timeout`] overrides it for tests.
const RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// Per-rank communication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub messages_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Barriers participated in.
    pub barriers: u64,
    /// Collective operations (allreduce/bcast/gather) participated in.
    pub collectives: u64,
    /// Dynamic-scheduler work-unit re-issues (failure retries plus
    /// speculative straggler copies) coordinated by this rank.
    pub sched_reissues: u64,
    /// Dynamic-scheduler messages dropped or refused because they carried
    /// a superseded sweep epoch.
    pub sched_stale: u64,
}

impl CommStats {
    /// Element-wise sum.
    pub fn merged(&self, o: &CommStats) -> CommStats {
        CommStats {
            messages_sent: self.messages_sent + o.messages_sent,
            bytes_sent: self.bytes_sent + o.bytes_sent,
            barriers: self.barriers + o.barriers,
            collectives: self.collectives + o.collectives,
            sched_reissues: self.sched_reissues + o.sched_reissues,
            sched_stale: self.sched_stale + o.sched_stale,
        }
    }
}

/// Out-of-order receive buffer keyed by `(source rank, tag)`.
type PendingMsgs = HashMap<(usize, u64), VecDeque<Vec<u8>>>;

/// Collective operation kinds carried in the [`Fingerprint`] header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CollectiveKind {
    /// Element-wise sum reduction distributed back to every member.
    AllreduceSum = 1,
    /// One-to-all broadcast from a root.
    Bcast = 2,
    /// All-to-one gather at a root.
    Gather = 3,
}

impl CollectiveKind {
    fn from_u8(v: u8) -> Option<CollectiveKind> {
        match v {
            1 => Some(CollectiveKind::AllreduceSum),
            2 => Some(CollectiveKind::Bcast),
            3 => Some(CollectiveKind::Gather),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            CollectiveKind::AllreduceSum => "allreduce_sum",
            CollectiveKind::Bcast => "bcast",
            CollectiveKind::Gather => "gather",
        }
    }
}

/// Sentinel length meaning "payload length not checked for this op" (used
/// by gather, whose per-rank contributions may legitimately differ).
pub(crate) const LEN_UNCHECKED: u64 = u64::MAX;

/// The schedule fingerprint prepended to every collective's first (upward)
/// message. Wire format, little-endian: `[kind:u8][comm:u64][op:u64]
/// [len:u64]` — 25 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Fingerprint {
    kind: u8,
    comm: u64,
    op: u64,
    len: u64,
}

/// Encoded size of a [`Fingerprint`].
const FINGERPRINT_LEN: usize = 25;

impl Fingerprint {
    fn new(kind: CollectiveKind, comm: u64, op: u64, len: u64) -> Fingerprint {
        Fingerprint {
            kind: kind as u8,
            comm,
            op,
            len,
        }
    }

    fn encode(&self) -> [u8; FINGERPRINT_LEN] {
        let mut out = [0u8; FINGERPRINT_LEN];
        out[0] = self.kind;
        out[1..9].copy_from_slice(&self.comm.to_le_bytes());
        out[9..17].copy_from_slice(&self.op.to_le_bytes());
        out[17..25].copy_from_slice(&self.len.to_le_bytes());
        out
    }

    fn decode(b: &[u8]) -> Option<Fingerprint> {
        if b.len() < FINGERPRINT_LEN {
            return None;
        }
        let word = |lo: usize| {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&b[lo..lo + 8]);
            u64::from_le_bytes(raw)
        };
        Some(Fingerprint {
            kind: b[0],
            comm: word(1),
            op: word(9),
            len: word(17),
        })
    }

    /// Two fingerprints agree when kind, communicator and op counter are
    /// identical and the payload lengths match (a [`LEN_UNCHECKED`] on
    /// either side wildcards the length).
    fn matches(&self, other: &Fingerprint) -> bool {
        self.kind == other.kind
            && self.comm == other.comm
            && self.op == other.op
            && (self.len == other.len || self.len == LEN_UNCHECKED || other.len == LEN_UNCHECKED)
    }

    /// Human-readable form used in [`OmenError::ScheduleDivergence`], e.g.
    /// `bcast#2 comm=1 len=0`.
    fn describe(&self) -> String {
        let kind = match CollectiveKind::from_u8(self.kind) {
            Some(k) => k.name().to_string(),
            None => format!("op-kind-{}", self.kind),
        };
        if self.len == LEN_UNCHECKED {
            format!("{kind}#{} comm={} len=?", self.op, self.comm)
        } else {
            format!("{kind}#{} comm={} len={}", self.op, self.comm, self.len)
        }
    }
}

/// Verdict byte leading every downward (root → member) collective message.
const DOWN_OK: u8 = 0;
const DOWN_DIVERGED: u8 = 1;

/// The execution context handed to each rank's closure.
pub struct RankCtx {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    barrier: std::sync::Arc<Barrier>,
    recv_timeout: Duration,
    // Out-of-order buffer: messages that arrived before being asked for.
    pending: RefCell<PendingMsgs>,
    stats: RefCell<CommStats>,
    // Monotone counter namespacing world-collective fingerprints.
    op_counter: RefCell<u64>,
}

/// Tag namespace split: user tags occupy the low half, internal collective
/// tags the high half.
pub(crate) const COLLECTIVE_TAG_BASE: u64 = 1 << 63;

/// Communicator id of the implicit world communicator every [`RankCtx`]
/// collective runs on (sub-communicators derive nonzero ids).
const WORLD_COMM_ID: u64 = 0;

impl RankCtx {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Snapshot of this rank's communication counters.
    pub fn stats(&self) -> CommStats {
        *self.stats.borrow()
    }

    /// Folds dynamic-scheduler accounting (work-unit re-issues, stale-epoch
    /// messages) into this rank's counters.
    pub(crate) fn record_sched(&self, reissues: u64, stale: u64) {
        let mut s = self.stats.borrow_mut();
        s.sched_reissues += reissues;
        s.sched_stale += stale;
    }

    /// Number of received-but-unconsumed messages sitting in the
    /// out-of-order buffer. A correct SPMD protocol drains to zero at its
    /// synchronization points; a nonzero value after a solve indicates a
    /// leaked (e.g. duplicated) send.
    pub fn pending_messages(&self) -> usize {
        self.pending.borrow().values().map(|q| q.len()).sum()
    }

    /// Like [`Self::pending_messages`], restricted to point-to-point
    /// traffic (collective-internal messages excluded). Collective
    /// payloads from ranks running ahead of this one may legitimately sit
    /// in the buffer at a solver's drain point; leaked point-to-point
    /// sends may not.
    pub fn pending_p2p_messages(&self) -> usize {
        self.pending
            .borrow()
            .iter()
            .filter(|((_, tag), _)| tag & COLLECTIVE_TAG_BASE == 0)
            .map(|(_, q)| q.len())
            .sum()
    }

    /// Sends `data` to rank `to` with a user `tag` (must be < 2⁶³).
    pub fn send(&self, to: usize, tag: u64, data: Vec<u8>) {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must stay below 2^63");
        self.send_internal(to, tag, data);
    }

    pub(crate) fn send_internal(&self, to: usize, tag: u64, data: Vec<u8>) {
        assert!(to < self.size, "send to out-of-range rank {to}");
        {
            let mut s = self.stats.borrow_mut();
            s.messages_sent += 1;
            s.bytes_sent += data.len() as u64;
        }
        // A send can only fail when the destination rank already died (its
        // receiver dropped). The peer's failure is reported by run_ranks;
        // aborting this rank too would just obscure the root cause.
        let _ = self.senders[to].send(Msg {
            from: self.rank,
            tag,
            data,
        });
    }

    /// Blocking receive of the next message from `from` with `tag`.
    ///
    /// # Errors
    ///
    /// [`OmenError::RecvTimeout`] when no matching message arrives within
    /// the runtime's receive bound (the peer died or the communication
    /// schedule diverged), [`OmenError::ChannelClosed`] when every sender
    /// to this rank dropped while it was blocked. Both report the
    /// out-of-order buffer occupancy at the time of failure.
    pub fn recv(&self, from: usize, tag: u64) -> OmenResult<Vec<u8>> {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must stay below 2^63");
        self.recv_internal(from, tag)
    }

    pub(crate) fn recv_internal(&self, from: usize, tag: u64) -> OmenResult<Vec<u8>> {
        if let Some(q) = self.pending.borrow_mut().get_mut(&(from, tag)) {
            if let Some(d) = q.pop_front() {
                return Ok(d);
            }
        }
        loop {
            let msg = match self.receiver.recv_timeout(self.recv_timeout) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(OmenError::RecvTimeout {
                        rank: self.rank,
                        from,
                        tag,
                        waited_ms: self.recv_timeout.as_millis() as u64,
                        pending: self.pending_messages(),
                    });
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(OmenError::ChannelClosed {
                        rank: self.rank,
                        from,
                        tag,
                        pending: self.pending_messages(),
                    });
                }
            };
            if msg.from == from && msg.tag == tag {
                return Ok(msg.data);
            }
            self.pending
                .borrow_mut()
                .entry((msg.from, msg.tag))
                .or_default()
                .push_back(msg.data);
        }
    }

    /// Non-blocking-ish any-source receive: returns the next message
    /// carrying `tag` from *any* rank, waiting at most `timeout` for one to
    /// arrive. `Ok(None)` means the poll window elapsed with no match — the
    /// caller keeps control instead of deadlocking, which is what lets a
    /// work-scheduling coordinator interleave straggler detection with
    /// message service. When several sources already have a matching
    /// message buffered, the lowest source rank wins (deterministic drain
    /// order). Non-matching arrivals are parked in the out-of-order buffer
    /// exactly like [`Self::recv`].
    ///
    /// # Errors
    ///
    /// [`OmenError::ChannelClosed`] when every sender to this rank dropped
    /// while it was polling (the runtime is tearing down); the `from` field
    /// carries this rank's own id since the source was unconstrained.
    pub fn try_recv_any(
        &self,
        tag: u64,
        timeout: Duration,
    ) -> OmenResult<Option<(usize, Vec<u8>)>> {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must stay below 2^63");
        self.try_recv_any_internal(tag, timeout)
    }

    pub(crate) fn try_recv_any_internal(
        &self,
        tag: u64,
        timeout: Duration,
    ) -> OmenResult<Option<(usize, Vec<u8>)>> {
        // Buffered matches first, lowest source rank first.
        {
            let mut pending = self.pending.borrow_mut();
            let source = pending
                .iter()
                .filter(|((_, t), q)| *t == tag && !q.is_empty())
                .map(|((from, _), _)| *from)
                .min();
            if let Some(from) = source {
                if let Some(q) = pending.get_mut(&(from, tag)) {
                    if let Some(d) = q.pop_front() {
                        return Ok(Some((from, d)));
                    }
                }
            }
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            let msg = match self.receiver.recv_timeout(remaining) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(OmenError::ChannelClosed {
                        rank: self.rank,
                        from: self.rank,
                        tag,
                        pending: self.pending_messages(),
                    });
                }
            };
            if msg.tag == tag {
                return Ok(Some((msg.from, msg.data)));
            }
            self.pending
                .borrow_mut()
                .entry((msg.from, msg.tag))
                .or_default()
                .push_back(msg.data);
        }
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.stats.borrow_mut().barriers += 1;
        self.barrier.wait();
    }

    /// One verified collective round over `members` (global ranks, ordered;
    /// `members[my_index]` is this rank). Non-root members send
    /// `fingerprint ‖ up_payload` to the root; the root checks every
    /// fingerprint against its own, then either distributes
    /// `DOWN_OK ‖ down_of(contributions)` or a `DOWN_DIVERGED` verdict
    /// naming the first mismatching rank. Returns the root's contribution
    /// table (root only) and the downward payload.
    ///
    /// # Errors
    ///
    /// [`OmenError::ScheduleDivergence`] when any member's fingerprint
    /// disagrees with the root's — raised identically on every member of
    /// the round; receive failures propagate as
    /// [`OmenError::RecvTimeout`] / [`OmenError::ChannelClosed`].
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    pub(crate) fn collective_round(
        &self,
        members: &[usize],
        my_index: usize,
        root_index: usize,
        comm_id: u64,
        op: u64,
        kind: CollectiveKind,
        fp_len: u64,
        up_payload: Vec<u8>,
        down_of: impl FnOnce(&[Vec<u8>]) -> Vec<u8>,
    ) -> OmenResult<(Option<Vec<Vec<u8>>>, Vec<u8>)> {
        debug_assert_eq!(members[my_index], self.rank);
        self.stats.borrow_mut().collectives += 1;
        let tag = COLLECTIVE_TAG_BASE | comm_id;
        let my_fp = Fingerprint::new(kind, comm_id, op, fp_len);

        if my_index == root_index {
            // Collect every member's fingerprinted contribution before any
            // verdict goes out, so one divergence report covers the round.
            let mut contributions: Vec<Vec<u8>> = vec![Vec::new(); members.len()];
            contributions[root_index] = up_payload;
            let mut divergence: Option<(usize, Fingerprint)> = None;
            for (i, &peer) in members.iter().enumerate() {
                if i == root_index {
                    continue;
                }
                let data = self.recv_internal(peer, tag)?;
                let fp = Fingerprint::decode(&data).ok_or(OmenError::Deserialize {
                    context: "collective fingerprint header",
                })?;
                if divergence.is_none() && !my_fp.matches(&fp) {
                    divergence = Some((peer, fp));
                }
                contributions[i] = data[FINGERPRINT_LEN..].to_vec();
            }
            if let Some((peer, fp)) = divergence {
                let mut verdict = Vec::with_capacity(1 + 8 + 2 * FINGERPRINT_LEN);
                verdict.push(DOWN_DIVERGED);
                verdict.extend_from_slice(&(peer as u64).to_le_bytes());
                verdict.extend_from_slice(&my_fp.encode());
                verdict.extend_from_slice(&fp.encode());
                for (i, &other) in members.iter().enumerate() {
                    if i != root_index {
                        self.send_internal(other, tag, verdict.clone());
                    }
                }
                // analyze: allow(protocol-early-exit, divergence verdict path: every peer was just sent DOWN_DIVERGED above, so no rank is left blocking — all members surface the same typed ScheduleDivergence)
                return Err(OmenError::ScheduleDivergence {
                    rank: peer,
                    expected: my_fp.describe(),
                    got: fp.describe(),
                });
            }
            let down = down_of(&contributions);
            for (i, &other) in members.iter().enumerate() {
                if i != root_index {
                    let mut msg = Vec::with_capacity(1 + down.len());
                    msg.push(DOWN_OK);
                    msg.extend_from_slice(&down);
                    self.send_internal(other, tag, msg);
                }
            }
            Ok((Some(contributions), down))
        } else {
            let root = members[root_index];
            let mut up = Vec::with_capacity(FINGERPRINT_LEN + up_payload.len());
            up.extend_from_slice(&my_fp.encode());
            up.extend_from_slice(&up_payload);
            self.send_internal(root, tag, up);
            let down = self.recv_internal(root, tag)?;
            match down.first() {
                Some(&DOWN_OK) => Ok((None, down[1..].to_vec())),
                Some(&DOWN_DIVERGED) => {
                    let rest = &down[1..];
                    if rest.len() != 8 + 2 * FINGERPRINT_LEN {
                        return Err(OmenError::Deserialize {
                            context: "collective divergence verdict",
                        });
                    }
                    let mut raw = [0u8; 8];
                    raw.copy_from_slice(&rest[..8]);
                    let rank = u64::from_le_bytes(raw) as usize;
                    let expected = Fingerprint::decode(&rest[8..8 + FINGERPRINT_LEN]);
                    let got = Fingerprint::decode(&rest[8 + FINGERPRINT_LEN..]);
                    match (expected, got) {
                        (Some(e), Some(g)) => Err(OmenError::ScheduleDivergence {
                            rank,
                            expected: e.describe(),
                            got: g.describe(),
                        }),
                        _ => Err(OmenError::Deserialize {
                            context: "collective divergence verdict",
                        }),
                    }
                }
                _ => Err(OmenError::Deserialize {
                    context: "collective verdict byte",
                }),
            }
        }
    }

    /// World-scope allreduce (sum) of an `f64` vector. All ranks must call
    /// in the same order (MPI semantics, verified by the fingerprint
    /// protocol). Linear gather to rank 0 + bcast; the traffic is really
    /// executed and counted.
    ///
    /// # Errors
    ///
    /// [`OmenError::ScheduleDivergence`] when another rank entered a
    /// different collective (or an allreduce of a different vector length)
    /// this round; receive failures propagate as
    /// [`OmenError::RecvTimeout`] / [`OmenError::ChannelClosed`].
    pub fn allreduce_sum(&self, x: &[f64]) -> OmenResult<Vec<f64>> {
        let op = self.next_op();
        let members: Vec<usize> = (0..self.size).collect();
        let up = encode_f64s(x);
        let len = up.len() as u64;
        let (_, down) = self.collective_round(
            &members,
            self.rank,
            0,
            WORLD_COMM_ID,
            op,
            CollectiveKind::AllreduceSum,
            len,
            up,
            sum_contributions,
        )?;
        Ok(decode_f64s(&down))
    }

    /// World-scope broadcast from `root`.
    ///
    /// # Errors
    ///
    /// [`OmenError::ScheduleDivergence`] when another rank entered a
    /// different collective this round; receive failures propagate as
    /// [`OmenError::RecvTimeout`] / [`OmenError::ChannelClosed`].
    pub fn bcast(&self, root: usize, data: Vec<u8>) -> OmenResult<Vec<u8>> {
        let op = self.next_op();
        let members: Vec<usize> = (0..self.size).collect();
        let (_, down) = self.collective_round(
            &members,
            self.rank,
            root,
            WORLD_COMM_ID,
            op,
            CollectiveKind::Bcast,
            0,
            Vec::new(),
            move |_| data,
        )?;
        Ok(down)
    }

    /// World-scope gather to `root`; returns `Some(per-rank payloads)` on
    /// the root and `None` elsewhere.
    ///
    /// # Errors
    ///
    /// [`OmenError::ScheduleDivergence`] when another rank entered a
    /// different collective this round; receive failures propagate as
    /// [`OmenError::RecvTimeout`] / [`OmenError::ChannelClosed`].
    pub fn gather(&self, root: usize, data: Vec<u8>) -> OmenResult<Option<Vec<Vec<u8>>>> {
        let op = self.next_op();
        let members: Vec<usize> = (0..self.size).collect();
        let (parts, _) = self.collective_round(
            &members,
            self.rank,
            root,
            WORLD_COMM_ID,
            op,
            CollectiveKind::Gather,
            LEN_UNCHECKED,
            data,
            |_| Vec::new(),
        )?;
        Ok(parts)
    }

    fn next_op(&self) -> u64 {
        let mut c = self.op_counter.borrow_mut();
        *c += 1;
        assert!(*c < 1 << 31, "collective counter overflow");
        *c
    }
}

/// Element-wise sum of equal-length little-endian `f64` payloads (the
/// allreduce reduction applied at the root; lengths were already checked by
/// the fingerprint round).
pub(crate) fn sum_contributions(parts: &[Vec<u8>]) -> Vec<u8> {
    let mut acc: Vec<f64> = Vec::new();
    for p in parts {
        let vals = decode_f64s(p);
        if acc.is_empty() {
            acc = vals;
        } else {
            for (a, b) in acc.iter_mut().zip(vals) {
                *a += b;
            }
        }
    }
    encode_f64s(&acc)
}

/// Result of a rank-parallel run.
pub struct RunOutput<R> {
    /// Per-rank closure results, indexed by rank. A rank that panicked or
    /// whose receive timed out yields `Err(OmenError::RankFailed)` here;
    /// the other ranks' results are still delivered.
    pub results: Vec<OmenResult<R>>,
    /// Per-rank communication counters (zeroed for failed ranks).
    pub stats: Vec<CommStats>,
}

impl<R> RunOutput<R> {
    /// Aggregate communication counters over all ranks.
    pub fn total_stats(&self) -> CommStats {
        self.stats
            .iter()
            .fold(CommStats::default(), |a, b| a.merged(b))
    }

    /// The first failed rank, if any.
    pub fn first_error(&self) -> Option<&OmenError> {
        self.results.iter().find_map(|r| r.as_ref().err())
    }

    /// Unwraps every rank's result, panicking with the first failure's
    /// message. Convenience for callers (tests, benches) where any rank
    /// failure is a bug in the calling protocol.
    #[allow(clippy::panic)]
    pub fn unwrap_all(self) -> Vec<R> {
        self.results
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                // analyze: allow(panic-backstop, deliberate test/bench convenience that converts rank failures into panics)
                Err(e) => panic!("{e}"),
            })
            .collect()
    }
}

impl<R> RunOutput<OmenResult<R>> {
    /// Collapses `Ok(Err(e))` (the closure itself returned an error) into
    /// `Err(e)`, merging closure-level and runtime-level failures into one
    /// per-rank `OmenResult`.
    pub fn flattened(self) -> RunOutput<R> {
        RunOutput {
            results: self
                .results
                .into_iter()
                .map(|r| r.and_then(|inner| inner))
                .collect(),
            stats: self.stats,
        }
    }
}

fn panic_detail(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs `f` on `n` ranks (threads) and collects per-rank results and comm
/// counters.
///
/// The closure receives this rank's [`RankCtx`]; it must follow SPMD
/// collective ordering (all ranks call collectives in the same sequence —
/// violations surface as typed [`OmenError::ScheduleDivergence`] via the
/// fingerprint protocol rather than as hangs). A panic inside one rank is
/// caught on that rank's thread and reported as
/// `Err(OmenError::RankFailed { rank, .. })` in the output — it does not
/// tear down the process or the surviving ranks. Note that a rank waiting
/// on a dead peer fails via the receive timeout, while one blocked in
/// [`RankCtx::barrier`] cannot be released early; barrier-free protocols
/// (all solver traffic here) degrade gracefully.
pub fn run_ranks<R, F>(n: usize, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&RankCtx) -> R + Sync,
{
    run_ranks_with_timeout(n, RECV_TIMEOUT, f)
}

/// [`run_ranks`] with an explicit receive-timeout bound. Production callers
/// use [`run_ranks`]; tests exercising dead-peer handling shrink the bound
/// so a deliberate stall fails in milliseconds instead of 30 s.
pub fn run_ranks_with_timeout<R, F>(n: usize, recv_timeout: Duration, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&RankCtx) -> R + Sync,
{
    assert!(n > 0);
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = channel::<Msg>();
        senders.push(s);
        receivers.push(r);
    }
    let barrier = std::sync::Arc::new(Barrier::new(n));

    let mut out: Vec<Option<(OmenResult<R>, CommStats)>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (rank, receiver) in receivers.into_iter().enumerate() {
            let senders = senders.clone();
            let barrier = barrier.clone();
            let f = &f;
            handles.push(scope.spawn(move || {
                let ctx = RankCtx {
                    rank,
                    size: n,
                    senders,
                    receiver,
                    barrier,
                    recv_timeout,
                    pending: RefCell::new(HashMap::new()),
                    stats: RefCell::new(CommStats::default()),
                    op_counter: RefCell::new(0),
                };
                match catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
                    Ok(r) => (Ok(r), ctx.stats()),
                    Err(p) => (
                        Err(OmenError::RankFailed {
                            rank,
                            detail: panic_detail(p),
                        }),
                        CommStats::default(),
                    ),
                }
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            // The closure result is pre-caught above; join itself can only
            // fail on runtime-internal corruption.
            out[rank] = Some(match h.join() {
                Ok(pair) => pair,
                Err(p) => (
                    Err(OmenError::RankFailed {
                        rank,
                        detail: panic_detail(p),
                    }),
                    CommStats::default(),
                ),
            });
        }
    });

    let mut results = Vec::with_capacity(n);
    let mut stats = Vec::with_capacity(n);
    for (rank, slot) in out.into_iter().enumerate() {
        let (r, s) = slot.unwrap_or_else(|| {
            (
                Err(OmenError::RankFailed {
                    rank,
                    detail: "rank produced no result".into(),
                }),
                CommStats::default(),
            )
        });
        results.push(r);
        stats.push(s);
    }
    RunOutput { results, stats }
}

/// Encodes an `f64` slice as little-endian bytes.
pub fn encode_f64s(x: &[f64]) -> Vec<u8> {
    let mut v = Vec::with_capacity(x.len() * 8);
    for &f in x {
        v.extend_from_slice(&f.to_le_bytes());
    }
    v
}

/// Decodes little-endian bytes into `f64`s.
pub fn decode_f64s(b: &[u8]) -> Vec<f64> {
    assert_eq!(b.len() % 8, 0, "payload not a multiple of 8 bytes");
    b.chunks_exact(8)
        .map(|c| {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(c);
            f64::from_le_bytes(bytes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let n = 6;
        let out = run_ranks(n, |ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            ctx.send(next, 7, encode_f64s(&[ctx.rank() as f64]));
            let got = decode_f64s(&ctx.recv(prev, 7).unwrap());
            got[0]
        });
        let total = out.total_stats();
        for (rank, v) in out.unwrap_all().into_iter().enumerate() {
            let prev = (rank + n - 1) % n;
            assert_eq!(v, prev as f64);
        }
        assert_eq!(total.messages_sent, n as u64);
        assert_eq!(total.bytes_sent, 8 * n as u64);
    }

    #[test]
    fn allreduce_matches_serial_sum() {
        let n = 5;
        let out = run_ranks(n, |ctx| {
            let mine = vec![ctx.rank() as f64, 1.0, -(ctx.rank() as f64) * 0.5];
            ctx.allreduce_sum(&mine).unwrap()
        });
        let expect = [10.0, 5.0, -5.0];
        for r in out.unwrap_all() {
            for (a, b) in r.iter().zip(expect) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bcast_and_gather() {
        let out = run_ranks(4, |ctx| {
            let data = ctx
                .bcast(
                    2,
                    if ctx.rank() == 2 {
                        vec![42, 43]
                    } else {
                        vec![]
                    },
                )
                .unwrap();
            assert_eq!(data, vec![42, 43]);
            let g = ctx.gather(0, vec![ctx.rank() as u8]).unwrap();
            if ctx.rank() == 0 {
                let g = g.unwrap();
                assert_eq!(g, vec![vec![0], vec![1], vec![2], vec![3]]);
                1
            } else {
                assert!(g.is_none());
                0
            }
        });
        assert_eq!(out.unwrap_all().iter().sum::<i32>(), 1);
    }

    #[test]
    fn out_of_order_tags_buffered() {
        let out = run_ranks(2, |ctx| {
            if ctx.rank() == 0 {
                // Send tag 2 first, then tag 1.
                ctx.send(1, 2, vec![2]);
                ctx.send(1, 1, vec![1]);
                0
            } else {
                // Receive in the opposite order.
                let a = ctx.recv(0, 1).unwrap();
                let b = ctx.recv(0, 2).unwrap();
                assert_eq!((a, b), (vec![1], vec![2]));
                assert_eq!(ctx.pending_messages(), 0, "buffer drained after both recvs");
                1
            }
        });
        assert_eq!(out.unwrap_all(), vec![0, 1]);
    }

    #[test]
    fn try_recv_any_matches_any_source_and_times_out() {
        let out = run_ranks(3, |ctx| {
            if ctx.rank() == 0 {
                // Collect one tagged message from each peer, source unknown
                // a priori; then confirm the poll window expires cleanly.
                let mut froms = Vec::new();
                for _ in 0..2 {
                    let (from, data) = ctx
                        .try_recv_any(5, Duration::from_secs(5))
                        .unwrap()
                        .expect("peers send promptly");
                    assert_eq!(data, vec![from as u8]);
                    froms.push(from);
                }
                froms.sort_unstable();
                assert_eq!(froms, vec![1, 2]);
                assert!(ctx
                    .try_recv_any(5, Duration::from_millis(10))
                    .unwrap()
                    .is_none());
                1
            } else {
                ctx.send(0, 5, vec![ctx.rank() as u8]);
                0
            }
        });
        assert_eq!(out.unwrap_all().iter().sum::<i32>(), 1);
    }

    #[test]
    fn try_recv_any_drains_buffer_lowest_source_first() {
        let out = run_ranks(3, |ctx| {
            if ctx.rank() == 0 {
                // Park both messages in the out-of-order buffer via a recv
                // on an unrelated tag, then drain with any-source.
                ctx.recv(1, 9).unwrap();
                assert_eq!(ctx.pending_messages(), 2);
                let (a, _) = ctx
                    .try_recv_any(5, Duration::from_secs(1))
                    .unwrap()
                    .unwrap();
                let (b, _) = ctx
                    .try_recv_any(5, Duration::from_secs(1))
                    .unwrap()
                    .unwrap();
                assert_eq!((a, b), (1, 2), "lowest source drains first");
                1
            } else if ctx.rank() == 2 {
                // Send first, then release rank 1 — the causal chain makes
                // the arrival order at rank 0 deterministic.
                ctx.send(0, 5, vec![2]);
                ctx.send(1, 8, vec![]);
                0
            } else {
                ctx.recv(2, 8).unwrap();
                ctx.send(0, 5, vec![1]);
                // The unrelated unblocking message, last in rank 0's queue.
                ctx.send(0, 9, vec![0]);
                0
            }
        });
        assert_eq!(out.unwrap_all().iter().sum::<i32>(), 1);
    }

    #[test]
    fn barrier_counts() {
        let out = run_ranks(3, |ctx| {
            ctx.barrier();
            ctx.barrier();
            ctx.rank()
        });
        for s in &out.stats {
            assert_eq!(s.barriers, 2);
        }
    }

    #[test]
    fn single_rank_degenerate() {
        let out = run_ranks(1, |ctx| {
            assert_eq!(ctx.size(), 1);
            let r = ctx.allreduce_sum(&[3.0]).unwrap();
            assert_eq!(r, vec![3.0]);
            let b = ctx.bcast(0, vec![9]).unwrap();
            assert_eq!(b, vec![9]);
            7u8
        });
        assert_eq!(out.unwrap_all(), vec![7]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let x = vec![1.5, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(decode_f64s(&encode_f64s(&x)), x);
    }

    #[test]
    fn fingerprint_wire_roundtrip() {
        let fp = Fingerprint::new(CollectiveKind::Gather, 0x7FFF_0001, 42, LEN_UNCHECKED);
        let enc = fp.encode();
        assert_eq!(enc.len(), FINGERPRINT_LEN);
        assert_eq!(Fingerprint::decode(&enc), Some(fp));
        assert!(fp.describe().contains("gather#42"));
        assert!(fp.describe().contains("len=?"));
        let a = Fingerprint::new(CollectiveKind::AllreduceSum, 1, 2, 16);
        let b = Fingerprint::new(CollectiveKind::AllreduceSum, 1, 2, 24);
        assert!(!a.matches(&b), "allreduce length mismatch must not match");
        let w = Fingerprint::new(CollectiveKind::AllreduceSum, 1, 2, LEN_UNCHECKED);
        assert!(a.matches(&w) && w.matches(&b), "wildcard length matches");
        assert!(Fingerprint::decode(&enc[..10]).is_none());
    }

    #[test]
    fn rank_panic_is_captured_not_fatal() {
        let out = run_ranks(3, |ctx| {
            if ctx.rank() == 1 {
                panic!("deliberate failure on rank 1");
            }
            ctx.rank() * 10
        });
        assert!(out.results[0].is_ok());
        assert!(out.results[2].is_ok());
        match &out.results[1] {
            Err(OmenError::RankFailed { rank, detail }) => {
                assert_eq!(*rank, 1);
                assert!(detail.contains("deliberate failure"));
            }
            other => panic!("expected RankFailed, got {other:?}"),
        }
        assert!(out.first_error().is_some());
    }

    #[test]
    fn closure_level_errors_flatten() {
        let out = run_ranks(2, |ctx| -> OmenResult<usize> {
            if ctx.rank() == 0 {
                Err(OmenError::LeadNotConverged {
                    energy: 0.25,
                    iters: 200,
                })
            } else {
                Ok(99)
            }
        })
        .flattened();
        assert_eq!(
            out.results[0],
            Err(OmenError::LeadNotConverged {
                energy: 0.25,
                iters: 200
            })
        );
        assert_eq!(out.results[1], Ok(99));
    }

    #[test]
    fn skipped_bcast_is_schedule_divergence_on_every_rank() {
        // Rank 1 skips the second bcast and goes straight to the allreduce.
        // The fingerprint protocol must convert this into the *same* typed
        // ScheduleDivergence on every rank within one collective round —
        // no 30 s timeout, no panic. The generous default timeout proves
        // detection does not rely on it.
        let t0 = std::time::Instant::now();
        let out = run_ranks(3, |ctx| -> OmenResult<()> {
            ctx.bcast(0, vec![ctx.rank() as u8])?;
            if ctx.rank() != 1 {
                // analyze: allow(spmd-divergence, deliberately divergent schedule under test)
                ctx.bcast(0, vec![7])?;
            }
            ctx.allreduce_sum(&[1.0])?;
            Ok(())
        })
        .flattened();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "divergence must be detected without waiting out the recv timeout"
        );
        for (rank, r) in out.results.iter().enumerate() {
            match r {
                Err(OmenError::ScheduleDivergence {
                    rank: divergent,
                    expected,
                    got,
                }) => {
                    assert_eq!(*divergent, 1, "rank {rank} must name the divergent rank");
                    assert!(expected.contains("bcast#2"), "expected fp: {expected}");
                    assert!(got.contains("allreduce_sum#2"), "got fp: {got}");
                }
                other => panic!("rank {rank}: expected ScheduleDivergence, got {other:?}"),
            }
        }
    }

    #[test]
    fn allreduce_length_mismatch_is_divergence() {
        let out = run_ranks(2, |ctx| -> OmenResult<()> {
            let mine: Vec<f64> = vec![1.0; 2 + ctx.rank()];
            ctx.allreduce_sum(&mine)?;
            Ok(())
        })
        .flattened();
        for r in &out.results {
            match r {
                Err(OmenError::ScheduleDivergence { rank, .. }) => assert_eq!(*rank, 1),
                other => panic!("expected ScheduleDivergence, got {other:?}"),
            }
        }
    }

    #[test]
    fn dead_peer_recv_is_typed_timeout_with_pending_state() {
        let out = run_ranks_with_timeout(2, Duration::from_millis(100), |ctx| {
            if ctx.rank() == 0 {
                // Rank 1 exits without ever sending; also park an unrelated
                // message in the buffer to check the pending count.
                ctx.send(0, 3, vec![1, 2, 3]);
                ctx.recv(1, 9).map(|_| ())
            } else {
                Ok(())
            }
        })
        .flattened();
        assert!(out.results[1].is_ok());
        match &out.results[0] {
            Err(OmenError::RecvTimeout {
                rank,
                from,
                tag,
                waited_ms,
                pending,
            }) => {
                assert_eq!((*rank, *from, *tag), (0, 1, 9));
                assert_eq!(*waited_ms, 100);
                assert_eq!(*pending, 1, "the self-sent message must be reported");
            }
            other => panic!("expected RecvTimeout, got {other:?}"),
        }
    }
}
