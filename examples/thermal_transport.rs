//! Phonon engineering: thermal transport through a silicon nanowire.
//!
//! ```sh
//! cargo run --release --example thermal_transport
//! ```
//!
//! The thermal side of nanodevice engineering on the same atomistic
//! machinery as the electronic examples: Keating valence-force-field
//! phonons, the ballistic transmission staircase, and the Landauer thermal
//! conductance from the cryogenic (universal-quantum) regime to room
//! temperature — including the Si vs Ge mass contrast.

use omen::lattice::{Crystal, Device};
use omen::num::A_SI;
use omen::phonon::{
    phonon_dispersion, phonon_transmission, thermal_conductance, KeatingModel, PhononSystem,
    KAPPA_QUANTUM_W_PER_K2,
};

fn main() {
    let dev = Device::nanowire(Crystal::Zincblende { a: A_SI }, 6, 0.8, 0.8);
    let si = PhononSystem::build(&dev, KeatingModel::silicon());
    let ge = PhononSystem::build(&dev, KeatingModel::germanium());
    println!(
        "0.8 nm wire, {} atoms; Si ω_max = {:.1} rad/ps, Ge ω_max = {:.1} rad/ps \
         (heavier atoms → softer spectrum)",
        dev.num_atoms(),
        si.omega_max,
        ge.omega_max
    );
    assert!(ge.omega_max < si.omega_max, "mass scaling must soften Ge");

    // Acoustic branches at a small q.
    let bands = phonon_dispersion(&si.d00, &si.d01, &[0.1]);
    println!(
        "\nlowest Si branches at qΔ = 0.1: flexural {:.2}/{:.2}, torsion {:.2}, LA {:.2} rad/ps",
        bands[0][0], bands[0][1], bands[0][2], bands[0][3]
    );

    // Low-frequency transmission counts the gapless branches.
    let t0 = phonon_transmission(&si, 1.0).expect("phonon solve failed");
    println!("T(ω→0) = {t0:.3} (3 translations + torsion = 4 channels)");

    println!("\n   T (K)    κ_Si (W/K)    κ_Ge (W/K)   κ_Si/(T·κ₀)");
    for t in [2.0, 20.0, 77.0, 300.0] {
        let k_si = thermal_conductance(&si, t, 40).expect("phonon solve failed");
        let k_ge = thermal_conductance(&ge, t, 40).expect("phonon solve failed");
        println!(
            "  {t:6.0}   {k_si:.3e}    {k_ge:.3e}   {:.2}",
            k_si / (t * KAPPA_QUANTUM_W_PER_K2)
        );
    }
    let k2 = thermal_conductance(&si, 2.0, 40).expect("phonon solve failed");
    let quanta = k2 / (2.0 * KAPPA_QUANTUM_W_PER_K2);
    assert!(
        (quanta - 4.0).abs() < 0.6,
        "low-T conductance must approach 4 universal quanta, got {quanta}"
    );
    println!("\nat 2 K the wire carries ≈ 4 × π²k_B²T/3h — the universal ballistic limit ✓");
}
