//! Quickstart: bulk bands, a nanowire, and its ballistic transmission.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the three layers a new user touches first:
//! 1. validate the tight-binding material model on bulk silicon;
//! 2. carve an atomistic Si nanowire and inspect its subbands;
//! 3. compute the ballistic transmission through it with both transport
//!    engines and check they agree.

use omen::lattice::Vec3;
use omen::negf;
use omen::num::linspace;
use omen::tb::bulk::{band_gap, bulk_bands, path_l_gamma_x};
use omen::tb::{bands, DeviceHamiltonian, Material, TbParams};
use omen::wf;

fn main() {
    // --- 1. Bulk silicon bandstructure ---------------------------------
    let p = TbParams::of(Material::SiSp3s);
    println!("material: {}", p.name);
    let path = path_l_gamma_x(p.a, 30);
    let bands_along: Vec<Vec<f64>> = path.iter().map(|&k| bulk_bands(&p, k, false)).collect();
    let (vbm, cbm, gap) = band_gap(&bands_along, 4);
    println!("bulk Si:  VBM = {vbm:+.3} eV   CBM = {cbm:+.3} eV   gap = {gap:.3} eV (indirect)");
    let gamma = bulk_bands(&p, Vec3::ZERO, false);
    println!("          Γ conduction state at {:+.3} eV", gamma[4]);

    // --- 2. A 1 nm gate-all-around silicon nanowire ---------------------
    let device = omen::lattice::Device::nanowire(
        omen::lattice::Crystal::Zincblende { a: p.a },
        4,   // slabs (principal layers)
        1.0, // nm cross-section
        1.0,
    );
    println!(
        "\nnanowire: {} atoms in {} slabs of {:.3} nm ({} atoms/slab)",
        device.num_atoms(),
        device.num_slabs,
        device.slab_width,
        device.slab_offsets()[1]
    );
    let ham = DeviceHamiltonian::new(&device, p, false);
    let (h00, h01) = ham.lead_blocks(0.0, 0.0);
    let thetas = linspace(0.0, std::f64::consts::PI, 17);
    let wire = bands::wire_bands(&h00, &h01, &thetas);
    // Occupied subbands: one bonding state per bond in the slab.
    let offsets = device.slab_offsets();
    let dangling: usize = (0..offsets[1])
        .map(|i| {
            device
                .dangling_directions(i)
                .into_iter()
                .filter(|&d| !device.dangling_is_lead_facing(i, d))
                .count()
        })
        .sum();
    let n_occ = (4 * offsets[1] - dangling) / 2;
    let (wvbm, wcbm, wgap) = bands::wire_gap(&wire, n_occ);
    println!(
        "          confined gap = {wgap:.3} eV (bulk {gap:.3}) — VBM {wvbm:+.3}, CBM {wcbm:+.3}"
    );

    // --- 3. Ballistic transmission: RGF vs wave-function ----------------
    let pot = vec![0.0; device.num_atoms()];
    let h = ham.assemble(&pot, 0.0);
    println!("\n   E (eV)    T_RGF      T_WF");
    for e in linspace(wcbm + 0.03, wcbm + 0.63, 7) {
        let t_rgf = negf::transport_at_energy(e, &h, (&h00, &h01), (&h00, &h01))
            .expect("RGF point failed")
            .transmission;
        let t_wf =
            wf::wf_transport_at_energy(e, &h, (&h00, &h01), (&h00, &h01), wf::SolverKind::Thomas)
                .expect("WF point failed")
                .transmission;
        println!("  {e:+.3}   {t_rgf:8.5}  {t_wf:8.5}");
        assert!(
            (t_rgf - t_wf).abs() < 1e-4 * (1.0 + t_rgf),
            "engines must agree"
        );
    }
    println!("\nRGF and wave-function engines agree to numerical precision ✓");
}
