//! Multi-level parallel execution and petascale projection, in one run.
//!
//! ```sh
//! cargo run --release --example parallel_scaling
//! ```
//!
//! Demonstrates the two halves of the paper's performance story on this
//! machine: (1) a real distributed transmission sweep over the hierarchical
//! rank layout (energy groups × spatial SplitSolve ranks) with measured
//! communication counters, and (2) the projection of measured flop counts
//! onto the Jaguar machine model up to the full 224k-core partition.

use omen::core::parallel::{
    frozen_system, parallel_transmission, sequential_transmission, split_levels, LevelConfig,
    Schedule,
};
use omen::core::{Engine, TransistorSpec};
use omen::linalg::{flop_count, reset_flops};
use omen::num::linspace;
use omen::parsim::{run_ranks, MachineModel};
use omen::tb::Material;

fn main() {
    // --- 1. Distributed sweep vs sequential ----------------------------
    let mut spec = TransistorSpec::si_nanowire_nmos(Material::SingleBand { t_mev: 1000 }, 1.0, 8);
    spec.doping_sd = 0.0;
    let tr = spec.build();
    let v = vec![0.0; tr.device.num_atoms()];
    let (h, h00, h01) = frozen_system(&tr, &v, 0.0);
    let energies = linspace(-3.45, -2.6, 12);

    reset_flops();
    let t0 = std::time::Instant::now();
    let reference =
        sequential_transmission(&h, (&h00, &h01), (&h00, &h01), &energies, Engine::WfThomas)
            .expect("sequential sweep failed");
    let seq_time = t0.elapsed();
    let seq_flops = flop_count();

    let cfg = LevelConfig {
        bias: 1,
        momentum: 1,
        energy: 2,
        spatial: 2,
    };
    let t1 = std::time::Instant::now();
    let out = run_ranks(cfg.total(), |ctx| {
        let comms = split_levels(ctx, &cfg)?;
        parallel_transmission(
            &comms,
            &cfg,
            &h,
            (&h00, &h01),
            (&h00, &h01),
            &energies,
            Schedule::Static,
        )
        .map(|s| s.transmission)
    })
    .flattened();
    let par_time = t1.elapsed();
    let stats = out.total_stats();
    let results = out.unwrap_all();

    for (a, b) in results[0].iter().zip(&reference) {
        assert!(
            (a - b).abs() < 1e-8 * (1.0 + b.abs()),
            "distributed must equal sequential"
        );
    }
    println!("sequential sweep: {seq_time:?} ({seq_flops} flops)");
    println!(
        "4-rank (2 energy groups × 2 spatial) sweep: {par_time:?}, \
         {} messages / {} bytes exchanged",
        stats.messages_sent, stats.bytes_sent
    );

    // --- 2. Jaguar projection -------------------------------------------
    let jaguar = MachineModel::jaguar_xt5();
    println!(
        "\nprojection target: {} ({:.2} PFlop/s peak)",
        jaguar.name,
        jaguar.peak_flops() / 1e15
    );
    // A production bias point: scale the measured per-energy flop count to
    // the paper-class workload (~50k atoms, sp3d5s*, ~1000 energies × 21
    // k-points × 13 bias points).
    let flops_per_energy = seq_flops as f64 / energies.len() as f64;
    let block_scale = (50_000.0 / tr.device.num_atoms() as f64) * (10.0 / 1.0); // atoms × orbital ratio
    let production_flops_per_energy = flops_per_energy * block_scale.powf(2.0); // O(n²·N) per slab solve
    let total = production_flops_per_energy * 1000.0 * 21.0 * 13.0;
    println!("projected production workload: {total:.3e} flops");
    println!("\n   cores     time (s)    sustained (TFlop/s)   % of peak");
    for &cores in &[1024usize, 8192, 32768, 131072, 224_256] {
        // Embarrassingly parallel levels absorb most ranks; spatial level
        // efficiency from the measured SplitSolve overhead factor (~2.2×
        // arithmetic at high rank counts).
        let eff = 0.97 - 0.11 * ((cores as f64).log2() / 18.0);
        let t = total / (cores as f64 * jaguar.peak_flops_per_core * jaguar.gemm_efficiency * eff);
        let sustained = total / t;
        println!(
            "  {cores:7}   {t:9.1}   {:12.1}          {:4.1}%",
            sustained / 1e12,
            100.0 * sustained / (cores as f64 * jaguar.peak_flops_per_core)
        );
    }
    println!("\nthe 224k-core row reproduces the ~1.4 PFlop/s sustained regime.");
}
