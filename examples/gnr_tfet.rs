//! Band-to-band tunneling transistor: armchair graphene nanoribbon p-i-n.
//!
//! ```sh
//! cargo run --release --example gnr_tfet
//! ```
//!
//! A 7-AGNR (semiconducting, E_g ≈ 1.4 eV at this width in the π model)
//! biased as a p-i-n tunneling FET: the source bands sit at the p-doped
//! level, the drain is pulled down by the n-doping so its conduction band
//! faces the source valence band, and the gate lowers the channel bands.
//! Current turns on when the channel conduction band drops into the
//! source-valence/drain-conduction window — the band-to-band tunneling
//! mechanism that lets TFETs beat the 60 mV/dec thermionic limit.

use omen::core::ballistic::{ballistic_solve, Engine};
use omen::core::iv::{subthreshold_swing, IvPoint};
use omen::core::{Bias, TransistorSpec};
use omen::num::linspace;
use omen::tb::{bands, DeviceHamiltonian};

fn main() {
    // 21 slabs → 7-slab (3 nm) channel: long enough to suppress direct
    // source-drain tunneling leakage.
    let spec = TransistorSpec::gnr_tfet(7, 21);
    let tr = spec.build();
    println!(
        "7-AGNR TFET: {} C atoms, {} slabs, ribbon width {:.2} nm",
        tr.device.num_atoms(),
        tr.device.num_slabs,
        tr.device.cross.0
    );

    // Ribbon band structure: confirm the semiconducting gap.
    let ham = DeviceHamiltonian::new(&tr.device, tr.params, false);
    let (h00, h01) = ham.lead_blocks(0.0, 0.0);
    let thetas = linspace(0.0, std::f64::consts::PI, 33);
    let ribbon = bands::wire_bands(&h00, &h01, &thetas);
    let n_occ = ribbon[0].len() / 2; // particle-hole symmetric π system
    let (vbm, cbm, gap) = bands::wire_gap(&ribbon, n_occ);
    println!("ribbon gap = {gap:.3} eV (VBM {vbm:+.3}, CBM {cbm:+.3})");
    assert!(gap > 0.5, "7-AGNR must be semiconducting");

    // p-i-n band diagram (frozen electrostatics): source at 0 (p-type, μ at
    // its valence band top), drain shifted down by the n-doping so its
    // conduction band faces the source valence band, channel shifted by the
    // gate.
    let v_ds = 0.3;
    let mu_source = vbm - 0.05;
    let drain_shift = gap + 0.25; // puts drain CBM ~0.25+VDS below source VBM region
    let lg_lo = tr.spec.source_slabs;
    let lg_hi = tr.spec.num_slabs - tr.spec.drain_slabs;

    println!("\n  V_G (V)   I_D (µA)          channel CBM (eV)");
    let vgs = linspace(0.5, 1.9, 15);
    let mut pts: Vec<IvPoint> = Vec::new();
    for &vg in &vgs {
        let v_atoms: Vec<f64> = tr
            .device
            .atoms
            .iter()
            .map(|a| {
                if a.slab < lg_lo {
                    0.0
                } else if a.slab >= lg_hi {
                    drain_shift
                } else {
                    vg
                }
            })
            .collect();
        let bias = Bias {
            v_gate: vg,
            v_ds,
            mu_source,
        };
        let r = ballistic_solve(&tr, &v_atoms, &bias, Engine::WfThomas, 81, 0.0);
        println!(
            "  {:+.3}    {:12.5e}     {:+.3}",
            vg,
            r.current_ua,
            cbm - vg
        );
        pts.push(IvPoint {
            v_gate: vg,
            v_ds,
            current_ua: r.current_ua,
            scf_iterations: 0,
            converged: true,
        });
    }

    let on = pts.last().unwrap().current_ua;
    let off = pts
        .iter()
        .map(|p| p.current_ua)
        .fold(f64::INFINITY, f64::min);
    println!("\nI_on/I_min over the sweep ≈ {:.2e}", on / off.max(1e-15));
    if let Some(ss) = subthreshold_swing(&pts) {
        println!("steepest swing over the BTBT turn-on ≈ {ss:.1} mV/dec");
    }
    assert!(
        on > 10.0 * off.max(1e-15),
        "gate must open the tunneling window"
    );
}
