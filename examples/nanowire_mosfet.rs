//! Self-consistent Id–Vg of a gate-all-around nanowire nMOSFET.
//!
//! ```sh
//! cargo run --release --example nanowire_mosfet
//! ```
//!
//! The workload the paper's introduction motivates: a gate-all-around
//! nanowire transistor solved self-consistently (quantum transport +
//! 3-D Poisson) across a gate sweep, with subthreshold swing and on/off
//! extraction. A single-band wire keeps the runtime interactive; swap the
//! material for `Material::SiSp3s` for the full-band version (same code
//! path, more minutes).

use omen::core::iv::{gate_sweep, on_off_ratio, subthreshold_swing};
use omen::core::{Engine, ScfOptions, Schedule, TransistorSpec};
use omen::num::linspace;
use omen::tb::Material;

fn main() {
    let mut spec = TransistorSpec::si_nanowire_nmos(Material::SingleBand { t_mev: 1000 }, 1.0, 8);
    spec.doping_sd = 2e-3; // 2·10^18 cm⁻³ donors in source/drain
    spec.t_ox = 0.6;
    let mut tr = spec.build();
    println!(
        "device: {} atoms, {} slabs, L = {:.2} nm, Poisson grid {} nodes",
        tr.device.num_atoms(),
        tr.device.num_slabs,
        tr.device.length(),
        tr.poisson.grid.len()
    );

    let opts = ScfOptions {
        engine: Engine::WfThomas,
        n_energy: 31,
        tol_v: 3e-3,
        max_iter: 20,
        mixing: 0.8,
        predictor: true,
        n_k: 1,
        schedule: Schedule::Static,
    };
    let v_ds = 0.2;
    // The 1 nm wire's lowest subband sits at −3.53 eV; μ = −3.4 places the
    // source Fermi level 0.13 eV above it, so the gate sweep straddles the
    // off/on transition.
    let mu_source = -3.4;
    let vgs = linspace(-0.4, 0.4, 9);

    println!("\n  V_G (V)   I_D (µA)     SCF its  converged");
    let points = gate_sweep(&mut tr, &vgs, v_ds, mu_source, &opts);
    for p in &points {
        println!(
            "  {:+.3}    {:11.5e}   {:3}      {}",
            p.v_gate, p.current_ua, p.scf_iterations, p.converged
        );
    }

    if let Some(ss) = subthreshold_swing(&points) {
        println!("\nsubthreshold swing ≈ {ss:.1} mV/dec");
    }
    if let Some(ratio) = on_off_ratio(&points) {
        println!("on/off ratio over sweep ≈ {ratio:.2e}");
        assert!(ratio > 10.0, "gate must modulate the current substantially");
    }
    assert!(
        points.last().unwrap().current_ua > points[0].current_ua,
        "gate must modulate the current upward"
    );
}
