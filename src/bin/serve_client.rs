//! serve_client — talk to a running `serve` daemon.
//!
//! ```sh
//! serve_client 127.0.0.1:7171 ping
//! serve_client 127.0.0.1:7171 submit my_device.omen
//! serve_client 127.0.0.1:7171 submit-default
//! serve_client 127.0.0.1:7171 stats
//! serve_client 127.0.0.1:7171 shutdown
//! ```
//!
//! `submit` streams per-point progress as it arrives and prints the
//! final I–V table; the request file uses the same `key = value` spec
//! format as `omen_cli` (`serve_client --print-default` for every key).

use omen::serve::{Client, SweepRequest};

fn usage() -> ! {
    eprintln!(
        "usage: serve_client <addr> ping|stats|shutdown|submit <spec-file>|submit-default\n\
         \x20      serve_client --print-default"
    );
    std::process::exit(2);
}

fn fail(e: impl std::fmt::Display) -> ! {
    eprintln!("error: {e}");
    std::process::exit(1);
}

fn submit(addr: &str, text: &str) {
    let mut client = Client::connect(addr).unwrap_or_else(|e| fail(e));
    let outcome = client
        .submit(text, &mut |p| {
            eprintln!(
                "point seq={}/{} V_G={:+.3} I={:.4e} µA ({}, {} solved / {} failed so far)",
                p.seq,
                p.total,
                p.v_gate,
                p.current_ua,
                if p.converged { "converged" } else { "stalled" },
                p.solved,
                p.failed,
            );
        })
        .unwrap_or_else(|e| fail(e));
    let result = outcome.result().unwrap_or_else(|e| fail(e));
    println!(
        "# job {:?} key {:032x} cache_hit={}",
        outcome.disposition, outcome.cache_key, outcome.cache_hit
    );
    println!("# V_G(V)      I_D(µA)        SCF_iters  converged");
    for (v_gate, _v_ds, current_ua, iters, converged) in &result.points {
        println!("{v_gate:+.4}    {current_ua:14.6e}   {iters:3}       {converged}");
    }
    println!(
        "# energies: {} solved, {} retried, {} recovered, {} failed",
        result.solved, result.retried, result.recovered, result.failed
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--print-default") {
        print!("{}", SweepRequest::default_text());
        return;
    }
    let (addr, cmd) = match (args.first(), args.get(1)) {
        (Some(a), Some(c)) => (a.as_str(), c.as_str()),
        _ => usage(),
    };
    match cmd {
        "ping" => {
            let mut c = Client::connect(addr).unwrap_or_else(|e| fail(e));
            c.ping().unwrap_or_else(|e| fail(e));
            println!("pong");
        }
        "stats" => {
            let mut c = Client::connect(addr).unwrap_or_else(|e| fail(e));
            let s = c.stats().unwrap_or_else(|e| fail(e));
            println!(
                "jobs_accepted={} busy_rejections={} solves_started={} cache_hits={} \
                 dedupe_joins={} cache_evictions={} queued={} running={}",
                s.jobs_accepted,
                s.busy_rejections,
                s.solves_started,
                s.cache_hits,
                s.dedupe_joins,
                s.cache_evictions,
                s.queued,
                s.running,
            );
        }
        "shutdown" => {
            let mut c = Client::connect(addr).unwrap_or_else(|e| fail(e));
            c.shutdown().unwrap_or_else(|e| fail(e));
            println!("drain started");
        }
        "submit" => match args.get(2) {
            Some(path) => {
                let text =
                    std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("{path}: {e}")));
                submit(addr, &text);
            }
            None => usage(),
        },
        "submit-default" => submit(addr, ""),
        _ => usage(),
    }
}
