//! serve — run OMEN as a long-lived simulation service.
//!
//! ```sh
//! cargo run --release --bin serve -- --addr 127.0.0.1:7171 --workers 4
//! ```
//!
//! The daemon accepts device + bias-sweep jobs over the framed TCP
//! protocol (DESIGN.md §14), dedupes identical in-flight jobs, serves
//! repeats from the content-addressed result cache, and streams typed
//! per-point progress. It runs until a client sends `Shutdown`
//! (`serve_client <addr> shutdown`), then drains in-flight work and
//! exits. Set `OMEN_LOG=1` for per-job progress on stderr.

use omen::serve::{Server, ServerConfig};

fn parse_args(args: &[String]) -> Result<(String, ServerConfig), String> {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers: expected an integer".to_string())?;
            }
            "--queue" => {
                cfg.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue: expected an integer".to_string())?;
            }
            "--cache-bytes" => {
                cfg.cache_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|_| "--cache-bytes: expected a byte count".to_string())?;
            }
            f => return Err(format!("unknown flag `{f}`")),
        }
    }
    Ok((addr, cfg))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, cfg) = match parse_args(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache-bytes N]"
            );
            std::process::exit(2);
        }
    };
    omen::core::log::emit_kernel_dispatch();
    let server = match Server::start(&addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "serve: listening on {} ({} workers, queue capacity {}, cache budget {} B); \
         stop with `serve_client {} shutdown`",
        server.addr(),
        cfg.workers,
        cfg.queue_capacity,
        cfg.cache_bytes,
        server.addr(),
    );
    // Blocks until a client-initiated drain completes.
    server.join();
    println!("serve: drained, exiting");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_parse_and_reject_unknown_flags() {
        let (addr, cfg) = parse_args(&strs(&[
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "7",
            "--queue",
            "3",
            "--cache-bytes",
            "4096",
        ]))
        .expect("parses");
        assert_eq!(addr, "0.0.0.0:9000");
        assert_eq!(cfg.workers, 7);
        assert_eq!(cfg.queue_capacity, 3);
        assert_eq!(cfg.cache_bytes, 4096);
        assert!(parse_args(&strs(&["--cache-bytes", "lots"])).is_err());
        assert!(parse_args(&strs(&["--bogus"])).is_err());
        assert!(parse_args(&strs(&["--workers"])).is_err());
        assert!(parse_args(&strs(&["--workers", "many"])).is_err());
    }
}
