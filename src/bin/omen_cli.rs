//! omen-cli — run device simulations from a plain-text spec file.
//!
//! ```sh
//! cargo run --release --bin omen_cli -- examples/specs/nanowire.omen
//! cargo run --release --bin omen_cli -- --print-default > my_device.omen
//! ```
//!
//! The spec format is deliberately dependency-free: one `key = value` pair
//! per line, `#` comments. Unknown keys are an error (typos should not be
//! silently ignored in a physics tool). See `default_spec()` for every key
//! and its default.

use omen::core::iv::{frozen_field_sweep, gate_sweep, on_off_ratio, subthreshold_swing};
use omen::core::{Engine, Geometry, ScfOptions, TransistorSpec};
use omen::num::linspace;
use omen::tb::Material;
use std::collections::BTreeMap;

/// Parses the `key = value` spec format.
fn parse_spec(text: &str) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`, got `{raw}`", lineno + 1))?;
        map.insert(k.trim().to_string(), v.trim().to_string());
    }
    Ok(map)
}

fn default_spec() -> &'static str {
    "\
# omen-cli device specification
material   = single_band_1000   # single_band_<t_meV> | si_sp3s | si_sp3d5s | gaas_sp3s | graphene_pz
geometry   = nanowire           # nanowire | utb | ribbon
width      = 1.0                # nm (nanowire side / utb thickness); dimer count for ribbon
slabs      = 8                  # device length in principal layers
doping_sd  = 2e-3               # source/drain doping, e/nm^3
pin        = false              # true → p-i-n junction (TFET)
mode       = scf                # scf | frozen
engine     = wf                 # wf | rgf | selinv
n_energy   = 31                 # energy points per transport solve
n_k        = 1                  # transverse k-points (utb only)
vds        = 0.2                # drain bias (V)
mu_source  = -3.4               # source Fermi level (eV)
vg_start   = -0.4
vg_stop    = 0.4
vg_points  = 9
"
}

fn run(spec_text: &str) -> Result<(), String> {
    let defaults = parse_spec(default_spec()).expect("default spec parses");
    let user = parse_spec(spec_text)?;
    for k in user.keys() {
        if !defaults.contains_key(k) {
            return Err(format!(
                "unknown key `{k}` (see --print-default for valid keys)"
            ));
        }
    }
    let get = |k: &str| user.get(k).unwrap_or_else(|| &defaults[k]).clone();
    let getf = |k: &str| -> Result<f64, String> {
        get(k)
            .parse()
            .map_err(|_| format!("key `{k}`: expected a number, got `{}`", get(k)))
    };
    let getu = |k: &str| -> Result<usize, String> {
        get(k)
            .parse()
            .map_err(|_| format!("key `{k}`: expected an integer, got `{}`", get(k)))
    };

    let material = match get("material").as_str() {
        "si_sp3s" => Material::SiSp3s,
        "si_sp3d5s" => Material::SiSp3d5s,
        "gaas_sp3s" => Material::GaAsSp3s,
        "graphene_pz" => Material::GraphenePz,
        m if m.starts_with("single_band_") => {
            let t: i32 = m["single_band_".len()..]
                .parse()
                .map_err(|_| format!("bad single_band hopping in `{m}`"))?;
            Material::SingleBand { t_mev: t }
        }
        m => return Err(format!("unknown material `{m}`")),
    };
    let slabs = getu("slabs")?;
    let width = getf("width")?;
    let mut spec = TransistorSpec::si_nanowire_nmos(material, width.max(0.5), slabs);
    spec.geometry = match get("geometry").as_str() {
        "nanowire" => Geometry::Nanowire { w: width, h: width },
        "utb" => Geometry::Utb { cells: 1, h: width },
        "ribbon" => Geometry::Ribbon {
            n_dimer: width as usize,
        },
        g => return Err(format!("unknown geometry `{g}`")),
    };
    spec.material = material;
    spec.doping_sd = getf("doping_sd")?;
    spec.pin_junction = get("pin") == "true";
    let engine = match get("engine").as_str() {
        "wf" => Engine::WfThomas,
        "rgf" => Engine::Rgf,
        "selinv" => Engine::SelInv,
        e => return Err(format!("unknown engine `{e}`")),
    };
    let n_energy = getu("n_energy")?;
    let vgs = linspace(getf("vg_start")?, getf("vg_stop")?, getu("vg_points")?);
    let v_ds = getf("vds")?;
    let mu = getf("mu_source")?;

    let mut tr = spec.build();
    println!(
        "# device: {} atoms, {} slabs, {} ({}), engine {:?}",
        tr.device.num_atoms(),
        tr.device.num_slabs,
        get("material"),
        get("geometry"),
        engine,
    );

    let points = match get("mode").as_str() {
        "frozen" => frozen_field_sweep(&tr, &vgs, v_ds, mu, engine, n_energy),
        "scf" => {
            let opts = ScfOptions {
                engine,
                n_energy,
                ..ScfOptions::default()
            };
            gate_sweep(&mut tr, &vgs, v_ds, mu, &opts)
        }
        m => return Err(format!("unknown mode `{m}`")),
    };

    println!("# V_G(V)      I_D(µA)        SCF_iters  converged");
    for p in &points {
        println!(
            "{:+.4}    {:14.6e}   {:3}       {}",
            p.v_gate, p.current_ua, p.scf_iterations, p.converged
        );
    }
    if let Some(ss) = subthreshold_swing(&points) {
        println!("# SS = {ss:.1} mV/dec");
    }
    if let Some(r) = on_off_ratio(&points) {
        println!("# on/off = {r:.3e}");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("--print-default") => print!("{}", default_spec()),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read spec `{path}`: {e}"));
            if let Err(e) = run(&text) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        None => {
            eprintln!("usage: omen_cli <spec-file> | omen_cli --print-default");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_self_consistent() {
        let d = parse_spec(default_spec()).unwrap();
        assert!(d.contains_key("material"));
        assert!(d.contains_key("vg_points"));
        assert_eq!(d["engine"], "wf");
    }

    #[test]
    fn parser_handles_comments_and_blank_lines() {
        let m = parse_spec("a = 1\n\n# comment\nb = two # trailing\n").unwrap();
        assert_eq!(m["a"], "1");
        assert_eq!(m["b"], "two");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_spec("no equals sign here").is_err());
    }

    #[test]
    fn unknown_key_is_an_error() {
        let e = run("materiall = si_sp3s\n").unwrap_err();
        assert!(e.contains("unknown key"), "{e}");
    }

    #[test]
    fn frozen_run_executes() {
        let spec = "\
material = single_band_1000
mode = frozen
slabs = 6
n_energy = 15
vg_points = 3
vg_start = -0.1
vg_stop = 0.1
mu_source = -3.4
doping_sd = 0.0
";
        run(spec).expect("frozen sweep runs");
    }
}
