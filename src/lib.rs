//! # omen — atomistic nanoelectronic device engineering
//!
//! Umbrella crate re-exporting the full `omen-rs` workspace: a Rust
//! reproduction of the OMEN full-band atomistic quantum-transport simulator
//! (Luisier, Boykin, Klimeck, Fichtner, SC 2011).
//!
//! Start with [`core`] for the device/simulation API, or the `examples/`
//! directory for runnable scenarios.

pub use omen_core as core;
pub use omen_lattice as lattice;
pub use omen_linalg as linalg;
pub use omen_negf as negf;
pub use omen_num as num;
pub use omen_parsim as parsim;
pub use omen_phonon as phonon;
pub use omen_poisson as poisson;
pub use omen_serve as serve;
pub use omen_sparse as sparse;
pub use omen_tb as tb;
pub use omen_wf as wf;
